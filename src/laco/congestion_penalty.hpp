// The congestion penalty L(x, y) and its gradient chain — the paper's
// central mechanism (Sec. III-A and III-E):
//
//   L_i = (1/MN) ‖ f ∘ g(X_{i-(C-1)K}, ..., X_i) ‖²        (Eq. 12)
//
// For look-ahead schemes, the current frame X_i (at both the look-ahead
// and congestion resolutions) is a differentiable input: autograd
// produces ∇_{X_i} L, and the analytic feature backward passes (RUDY /
// PinRUDY / cell-flow, Eq. 17) chain it to ∇_{x,y} L, which is added to
// the placement gradient with weight η. DREAM-Cong is the degenerate
// case f(X_i) without g.
//
// η is interpreted as a *fraction of the incoming gradient norm* (the
// penalty gradient is rescaled so its L1 norm is η × the L1 norm of the
// wirelength+density gradient). This keeps the trade-off stable across
// designs and scales — a deviation from the paper's fixed η, documented
// in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "features/feature_stack.hpp"
#include "laco/frame_history.hpp"
#include "models/congestion_fcn.hpp"
#include "models/lookahead_simvp.hpp"
#include "models/model_io.hpp"
#include "placer/global_placer.hpp"
#include "plan/plan.hpp"
#include "train/scheme.hpp"
#include "util/timer.hpp"

namespace laco::serial {
class Writer;
class Reader;
}  // namespace laco::serial

namespace laco {

/// Trained models shared by penalty instances and the pipeline.
struct LacoModels {
  LacoScheme scheme = LacoScheme::kCellFlowKL;
  std::shared_ptr<CongestionFcn> congestion;   ///< f
  std::shared_ptr<LookAheadModel> lookahead;   ///< g (null unless look-ahead)
  FeatureScale scale_hi;  ///< congestion-resolution normalization
  FeatureScale scale_lo;  ///< look-ahead-resolution normalization
};

/// Inference-only delegation hook for sharded serving: maps f's fully
/// assembled input tensor ([1, Cin, H, W]) to f's output ([1, 1, H, W]).
/// CongestionPenalty::predict() assembles the input locally (including
/// the look-ahead g forward) and, when a remote is set, delegates the
/// congestion forward to it — typically serve::make_penalty_remote()
/// wrapping an InferenceRouter. A throwing remote (shed, deadline,
/// breaker open, model error) falls back to the local plan/eager path
/// for that call. Gradients never cross the remote: operator()'s
/// autograd path always runs locally. Defined here, implemented by the
/// serve layer — laco stays below serve in the layer DAG
/// (docs/STATIC_ANALYSIS.md).
using RemoteCongestionForward = std::function<nn::Tensor(const nn::Tensor&)>;

struct PenaltyConfig {
  FeatureConfig features_hi;  ///< congestion-model grid (e.g. 64×64)
  FeatureConfig features_lo;  ///< look-ahead grid (e.g. 32×32)
  int frames = 4;             ///< C
  int spacing = 50;           ///< K
  double eta = 0.25;          ///< penalty gradient weight (norm fraction)
  int start_iteration = 50;   ///< no penalty before this iteration
  int apply_every = 5;        ///< penalty recomputed every n iterations

  // Graceful degradation (docs/RELIABILITY.md): a learned-penalty
  // failure falls back to the analytic RUDY penalty for that iteration;
  // after `degrade_threshold` consecutive failures the learned path is
  // skipped entirely for `reprobe_after` applications before probing it
  // again. The placement run always completes.
  int degrade_threshold = 3;  ///< consecutive failures that enter degraded mode
  int reprobe_after = 4;      ///< analytic-only applications per degraded stretch
};

/// Degradation bookkeeping for one CongestionPenalty instance; surfaced
/// through LacoRunResult::penalty_stats so callers (and the chaos ctest
/// target) can assert the fallback actually engaged.
struct PenaltyStats {
  std::uint64_t applications = 0;          ///< iterations where the penalty ran
  std::uint64_t learned_applications = 0;  ///< learned f∘g path succeeded
  std::uint64_t learned_failures = 0;      ///< learned path threw
  std::uint64_t analytic_fallbacks = 0;    ///< analytic RUDY penalty used instead
  std::uint64_t degradations = 0;          ///< times degraded mode was entered
  std::uint64_t remote_forwards = 0;       ///< predict() served by the remote hook
  std::uint64_t remote_fallbacks = 0;      ///< remote threw; local path used instead
};

/// Model-free RUDY penalty: L = (1/MN) Σ (s · rudy_i)² at `extractor`'s
/// resolution, with its exact gradient chained through the analytic RUDY
/// backward (Eq. 17) and *accumulated* into the movable-indexed
/// `pen_gx`/`pen_gy` (callers pass zeroed buffers of num_movable()).
/// Touches no network — it is the degradation fallback's core and is
/// finite-difference-checked in test_properties. `rudy_scale` is the
/// congestion-resolution RUDY normalization (FeatureScale::scale[0]).
double analytic_rudy_penalty(const Design& design, const FeatureExtractor& extractor,
                             double rudy_scale, std::vector<double>& pen_gx,
                             std::vector<double>& pen_gy);

class CongestionPenalty {
 public:
  CongestionPenalty(PenaltyConfig config, LacoModels models);

  /// GlobalPlacer::PenaltyHook: returns L and accumulates η-scaled
  /// gradients into the CellId-indexed buffers.
  double operator()(const Design& design, int iteration, std::vector<double>& grad_x,
                    std::vector<double>& grad_y);

  void set_runtime_breakdown(RuntimeBreakdown* breakdown) { breakdown_ = breakdown; }

  /// Predicted congestion map at the design's current state (inference
  /// only, no gradients) — used for NRMS/SSIM evaluation mid-placement.
  /// Returns false (and leaves `out` untouched) when history is not yet
  /// ready for a look-ahead prediction.
  bool predict(const Design& design, GridMap& out);

  /// Installs (or clears, with nullptr) the remote congestion-forward
  /// delegate used by predict(). Single-threaded with the placer loop,
  /// like the rest of the penalty state.
  void set_remote_forward(RemoteCongestionForward remote) { remote_forward_ = std::move(remote); }

  /// Snapshot codec (docs/RELIABILITY.md "Placement snapshots &
  /// resume"): serializes the penalty's loop state — frame history,
  /// degradation counters, stats — so a resumed placement replays the
  /// uninterrupted run bitwise. The payload is versioned by kVersion.
  static constexpr std::uint32_t kVersion = 1;
  void save_state(serial::Writer& w) const;
  void restore_state(serial::Reader& r);

  const PenaltyConfig& config() const { return config_; }
  const PenaltyStats& stats() const { return stats_; }
  /// True while the learned path is benched and the analytic fallback
  /// carries the penalty (docs/RELIABILITY.md).
  bool degraded() const { return degraded_remaining_ > 0; }

 private:
  /// Assembles f's input tensor; `hi_input`/`lo_input` receive the
  /// differentiable current-frame tensors (undefined if unused).
  nn::Tensor build_input(const Design& design, nn::Tensor& hi_input, nn::Tensor& lo_input,
                         bool with_grad);
  /// Feature-assembly half of build_input: computes the current-frame
  /// tensors (and the history context for look-ahead schemes) without
  /// running any model.
  void build_feature_inputs(const Design& design, bool with_grad, nn::Tensor& hi_input,
                            nn::Tensor& lo_input, nn::Tensor& context);
  /// Tensor-only model chain f∘g (g_in = cat(context, lo) → g → maybe
  /// slice → upsample → f(cat(pred_hi, hi)); just f(hi) without
  /// look-ahead). Pure function of its tensor arguments, so predict()
  /// can trace it into a compiled plan (docs/PLAN.md).
  nn::Tensor model_forward(const nn::Tensor& hi_input, const nn::Tensor& lo_input,
                           const nn::Tensor& context) const;
  /// Everything in model_forward up to (not including) the final f
  /// forward: the g chain plus upsample/concat. Returns the tensor f
  /// consumes — what a remote congestion forward receives.
  nn::Tensor assemble_f_input(const nn::Tensor& hi_input, const nn::Tensor& lo_input,
                              const nn::Tensor& context) const;
  FeatureFrame compute_frame(const Design& design, const FeatureExtractor& extractor,
                             const std::vector<double>* px, const std::vector<double>* py,
                             int iteration) const;
  /// Full learned path: build input, f∘g forward, autograd backward,
  /// analytic feature chain into `pen_gx`/`pen_gy`. Throws on model or
  /// shape errors (and when the "laco.penalty" failpoint fires).
  double learned_penalty(const Design& design, std::vector<double>& pen_gx,
                         std::vector<double>& pen_gy);
  /// Model-free fallback: L = mean(normalized RUDY²) with its exact
  /// gradient chained through the feature backward. Cannot fail for
  /// model-related reasons — it touches no network.
  double analytic_penalty(const Design& design, std::vector<double>& pen_gx,
                          std::vector<double>& pen_gy);
  /// η-normalizes the penalty gradient against the incoming gradient
  /// norm and adds it into the CellId-indexed buffers.
  void add_scaled(const Design& design, const std::vector<double>& pen_gx,
                  const std::vector<double>& pen_gy, std::vector<double>& grad_x,
                  std::vector<double>& grad_y) const;

  PenaltyConfig config_;
  LacoModels models_;
  SchemeTraits traits_;
  FeatureExtractor hi_extractor_;
  FeatureExtractor lo_extractor_;
  FrameHistory history_;
  // Positions at the last history tick, at congestion resolution reuse.
  RuntimeBreakdown* breakdown_ = nullptr;

  // Degradation state (single-threaded with the placer loop).
  PenaltyStats stats_;
  int consecutive_failures_ = 0;  ///< learned-path failures in a row
  int degraded_remaining_ = 0;    ///< analytic-only applications left
  RemoteCongestionForward remote_forward_;  ///< predict()'s f delegate (may be null)

  /// Arena workspace reused across predict() calls (single-threaded
  /// with the placer loop, like the rest of the penalty state).
  plan::Workspace plan_ws_;
};

}  // namespace laco
