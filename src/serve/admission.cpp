#include "serve/admission.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace laco::serve {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
    case Priority::kBestEffort: return "besteffort";
  }
  return "?";
}

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmit: return "admit";
    case AdmissionOutcome::kShedQueueFull: return "shed-queue-full";
    case AdmissionOutcome::kShedDeadline: return "shed-deadline";
  }
  return "?";
}

AdmissionConfig AdmissionConfig::validated() const {
  AdmissionConfig v = *this;
  LACO_CHECK(v.initial_cost_ms >= 0.0);
  v.queue_limit = std::max<std::size_t>(1, v.queue_limit);
  v.drain_width = std::max(1, v.drain_width);
  v.cost_ewma_alpha = std::clamp(v.cost_ewma_alpha, 0.0, 1.0);
  for (double& f : v.occupancy_limit) f = std::clamp(f, 0.0, 1.0);
  // The most urgent class must be able to use the whole queue, or the
  // reserved tail would be dead capacity no class can claim.
  v.occupancy_limit[0] = 1.0;
  return v;
}

ShardAdmission::ShardAdmission(AdmissionConfig config)
    : config_(config.validated()), cost_ms_(config_.initial_cost_ms) {}

AdmissionOutcome ShardAdmission::consider(Priority priority, TimePoint now,
                                          TimePoint deadline) const {
  const auto cls = static_cast<std::size_t>(priority);
  // Class occupancy cap: each class may fill only its fraction of the
  // queue. ceil-free formulation: admit while queued < floor(limit ×
  // fraction), minimum 1 slot so a fully idle shard admits any class.
  const auto class_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(config_.queue_limit) *
                                  config_.occupancy_limit[cls]));
  if (queued_total_ >= config_.queue_limit || queued_total_ >= class_cap) {
    return AdmissionOutcome::kShedQueueFull;
  }
  if (deadline != TimePoint::max()) {
    const auto est = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(estimated_wait_ms()));
    if (now + est > deadline) return AdmissionOutcome::kShedDeadline;
  }
  return AdmissionOutcome::kAdmit;
}

void ShardAdmission::on_admit(Priority priority) {
  ++queued_by_class_[static_cast<std::size_t>(priority)];
  ++queued_total_;
}

void ShardAdmission::on_complete(Priority priority, double exec_ms_per_item) {
  auto& cls = queued_by_class_[static_cast<std::size_t>(priority)];
  if (cls > 0) --cls;
  if (queued_total_ > 0) --queued_total_;
  if (exec_ms_per_item > 0.0) {
    cost_ms_ = (1.0 - config_.cost_ewma_alpha) * cost_ms_ +
               config_.cost_ewma_alpha * exec_ms_per_item;
  }
}

std::size_t ShardAdmission::queued(Priority priority) const {
  return queued_by_class_[static_cast<std::size_t>(priority)];
}

double ShardAdmission::estimated_wait_ms() const {
  return static_cast<double>(queued_total_ + 1) * cost_ms_ /
         static_cast<double>(config_.drain_width);
}

}  // namespace laco::serve
