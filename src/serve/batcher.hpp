// Request batcher: coalesces independent single-sample inference
// requests into one NCHW batch per forward pass. Requests are bucketed
// by (model set, model kind, input C×H×W) — only shape- and
// model-compatible requests share a batch. A bucket is cut when it
// reaches max_batch (size trigger) or when its oldest request has
// lingered past max_linger_ms (time trigger, driven by the service's
// flusher thread calling flush_due()).
//
// The batcher itself is a passive, lock-free-of-itself data structure:
// the owner provides external synchronization (InferenceService
// declares its batcher_ LACO_GUARDED_BY(mutex_), so the clang
// -Wthread-safety job statically rejects unlocked access). run_batch()
// does the actual model execution — one forward under NoGradGuard over
// the stacked input (laco-lint's nograd-forward rule enforces the
// guard) — and fulfills each request's promise with its output sample.
#pragma once

#include <chrono>
#include <future>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "nn/tensor.hpp"

namespace laco::serve {

/// Which network a request targets within a LacoModels set.
enum class ModelKind {
  kCongestion,  ///< f: [N, Cin, H, W] → [N, 1, H, W]
  kLookAhead,   ///< g: [N, C·cpf, H, W] → [N, cpf, H, W] (prediction)
};

const char* to_string(ModelKind kind);

struct BatchItem {
  std::shared_ptr<const LacoModels> models;
  ModelKind kind = ModelKind::kCongestion;
  nn::Tensor input;  ///< [1, C, H, W]
  std::promise<nn::Tensor> result;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Per-request deadline; an item still unexecuted past it fails with
  /// serve::DeadlineExceededError instead of burning a forward pass.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Caller-defined request tag, echoed verbatim in CompletionInfo.
  /// The shard router stores the priority class here so its completion
  /// hook can settle per-class admission accounting.
  int tag = 0;
};

/// A cut batch, ready for execution: every item shares models, kind,
/// and input shape.
struct Batch {
  std::vector<BatchItem> items;
};

struct BatcherConfig {
  int max_batch = 8;          ///< size trigger (clamped to ≥1)
  double max_linger_ms = 2.0; ///< time trigger for partial buckets
};

class Batcher {
 public:
  explicit Batcher(BatcherConfig config);

  /// Adds an item to its bucket; returns the bucket as a full batch when
  /// it reaches max_batch, std::nullopt otherwise.
  std::optional<Batch> add(BatchItem item);

  /// Cuts every bucket whose oldest item has waited ≥ max_linger_ms as
  /// of `now` (every non-empty bucket when `force`).
  std::vector<Batch> flush_due(std::chrono::steady_clock::time_point now, bool force = false);

  std::size_t pending() const;
  const BatcherConfig& config() const { return config_; }

 private:
  // Model identity by address: registry/service users hold stable
  // shared_ptrs, so pointer equality is the sharing contract.
  using BucketKey = std::tuple<const LacoModels*, int, int, int, int>;
  static BucketKey key_of(const BatchItem& item);

  BatcherConfig config_;
  std::map<BucketKey, std::vector<BatchItem>> buckets_;
  std::size_t pending_ = 0;
};

// Batch assembly reuses nn::stack_batch (ops.hpp): samples are
// contiguous in NCHW, so stacking [1, C, H, W] inputs is a straight
// copy into one [N, C, H, W] tensor.

/// Extracts sample `n` of an NCHW batch as a fresh [1, C, H, W] tensor.
nn::Tensor take_sample(const nn::Tensor& batch, int n);

/// One forward pass over the stacked batch under NoGradGuard. Throws on
/// model/shape errors (and when the "serve.forward" failpoint fires);
/// it never touches the items' promises, so the caller may retry a
/// TransientError before committing the batch to failure.
nn::Tensor forward_batch(const Batch& batch);

/// Fulfills each item's promise with its sample of `output`.
void deliver_batch(Batch& batch, const nn::Tensor& output);

/// Delivers `error` to every not-yet-fulfilled promise in the batch.
void fail_batch(Batch& batch, std::exception_ptr error);

/// Executes one batch without retries: forward_batch + deliver_batch,
/// any exception (shape mismatch, missing look-ahead model, ...)
/// delivered to every item's promise instead of propagating. The
/// hardened retry/breaker path lives in InferenceService::execute.
void run_batch(Batch batch);

}  // namespace laco::serve
