// Deadline-aware admission control for one service shard: the router
// front door that decides, BEFORE a request touches a shard's batcher,
// whether the shard can plausibly complete it. Three rejection-free
// invariants fall out (docs/SERVING.md "Sharding & admission"):
//
//   * bounded queues — a shard never holds more than `queue_limit`
//     admitted-but-uncompleted requests, so queue depth (and therefore
//     tail latency) cannot grow without bound;
//   * early deadline rejection — when the estimated completion time
//     (queued work ÷ drain width × per-item cost) already overruns the
//     request's deadline, the request fails with DeadlineExceededError
//     *now*, before consuming queue space or a forward pass;
//   * priority headroom — each priority class may only fill a
//     configured fraction of the queue, so under saturation best-effort
//     traffic is shed first and interactive traffic keeps claiming the
//     reserved tail.
//
// The class is passive and externally synchronized (InferenceRouter
// holds one per shard under its mutex) and every decision takes `now`
// and the deadline as parameters — tests drive the whole state machine
// with fake clocks, no hidden wall-clock reads (same design as
// serve::CircuitBreaker).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace laco::serve {

/// Request priority class. Lower value = more urgent. Priority affects
/// ADMISSION only (reserved queue headroom under saturation); admitted
/// requests execute in arrival order within their batch bucket.
enum class Priority : int {
  kInteractive = 0,  ///< placement-loop penalty forwards (a stalled iteration)
  kBatch = 1,        ///< training / evaluation traffic
  kBestEffort = 2,   ///< prefetch, speculative, refreshable work
};

constexpr int kNumPriorities = 3;

const char* to_string(Priority priority);

struct AdmissionConfig {
  /// Hard cap on admitted-but-uncompleted requests per shard.
  std::size_t queue_limit = 128;
  /// Per-item execution cost estimate before any completion has been
  /// observed (ms). The EWMA replaces it as real costs arrive.
  double initial_cost_ms = 2.0;
  /// EWMA weight of the newest observed per-item cost.
  double cost_ewma_alpha = 0.2;
  /// How many requests the shard drains in parallel (its worker-thread
  /// count times the expected batch occupancy); divides the estimated
  /// wait.
  int drain_width = 4;
  /// Fraction of queue_limit each priority class may fill. Interactive
  /// traffic may use the full queue; batch and best-effort stop earlier
  /// so the tail stays reserved for urgent work under saturation.
  std::array<double, kNumPriorities> occupancy_limit = {1.0, 0.85, 0.6};

  /// Clamps soft knobs to safe values (limit ≥ 1, width ≥ 1, alpha and
  /// occupancies into [0, 1]); the router stores the validated copy.
  AdmissionConfig validated() const;
};

enum class AdmissionOutcome {
  kAdmit,
  kShedQueueFull,  ///< class occupancy cap (or the hard limit) reached
  kShedDeadline,   ///< estimated completion already past the deadline
};

const char* to_string(AdmissionOutcome outcome);

class ShardAdmission {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit ShardAdmission(AdmissionConfig config = {});

  /// Pure decision, no state change: would a `priority` request with
  /// `deadline` be admitted at `now`? TimePoint::max() means no
  /// deadline (the deadline check is skipped, bounds still apply).
  AdmissionOutcome consider(Priority priority, TimePoint now, TimePoint deadline) const;

  /// Accounts one admitted request (caller checked consider() first).
  void on_admit(Priority priority);
  /// Accounts one completed request. `exec_ms_per_item` is the shard's
  /// observed per-item forward cost for that request's batch (≤ 0 when
  /// the request never reached a forward, e.g. breaker-rejected — the
  /// cost model then keeps its current estimate).
  void on_complete(Priority priority, double exec_ms_per_item);

  /// Admitted-but-uncompleted requests, total and per class.
  std::size_t queued() const { return queued_total_; }
  std::size_t queued(Priority priority) const;
  /// Current EWMA of per-item execution cost (ms).
  double cost_estimate_ms() const { return cost_ms_; }
  /// Estimated time until a request admitted now would complete:
  /// (queued + 1) × cost ÷ drain_width.
  double estimated_wait_ms() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  std::array<std::size_t, kNumPriorities> queued_by_class_{};
  std::size_t queued_total_ = 0;
  double cost_ms_ = 0.0;
};

}  // namespace laco::serve
