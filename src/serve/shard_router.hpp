// InferenceRouter — the sharded front door (docs/SERVING.md "Sharding
// & admission"). N independent InferenceService shards, each with its
// own worker pool, batcher, circuit breakers, and (by default) its own
// frozen model replicas, sit behind one submit() that decides
//
//   submit ──▶ p2c candidate pick ──▶ admission ──▶ shard.submit
//                                        │
//                                        └─▶ shed: ShedError /
//                                            DeadlineExceededError,
//                                            future fails *now*
//
// Routing is power-of-two-choices: two candidate shards are drawn from
// a deterministic splitmix64 stream and the one with the smaller
// estimated wait (queued work × per-item cost EWMA ÷ drain width) gets
// the request. Admission (serve/admission.hpp) enforces bounded
// per-shard queues, priority-class headroom, and early deadline
// rejection — a request the fleet cannot plausibly finish in time
// fails before it consumes queue space, so clients degrade (e.g.
// CongestionPenalty's analytic path) instead of timing out late.
//
// Model replication: each shard gets its own clone_frozen() replica of
// every model set routed through it, so batcher buckets, compiled-plan
// cache entries, and circuit breakers key per (shard, model set, kind)
// — a model broken on one shard trips only that shard's breaker.
//
// Thread-safety: submit() from any number of threads. The router mutex
// guards admission state and the replica map; it is NEVER held across
// shard.submit() (which can block on pool backpressure) or inside the
// shards' completion hooks' callers — the hook itself takes the router
// mutex from worker threads, which is safe because the service invokes
// it with no service lock held (serve/service.hpp CompletionHook).
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/service.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco::serve {

struct RouterConfig {
  int num_shards = 2;
  /// Per-shard service configuration. `shard.on_complete` is replaced
  /// by the router's own accounting hook; `shard.deadline_ms` doubles
  /// as the admission deadline (0 = no deadline, admission checks only
  /// queue bounds).
  ServiceConfig shard;
  AdmissionConfig admission;
  /// Give each shard its own clone_frozen() model replica (see above).
  /// Disable only in tests that assert on shared pointer identity.
  bool replicate_models = true;
  std::uint64_t p2c_seed = 0x10ad;  ///< candidate-pick stream seed

  /// Clamps num_shards ≥ 1 and validates the nested configs.
  RouterConfig validated() const;
};

struct RouterCounters {
  std::uint64_t requests = 0;        ///< submit() calls
  std::uint64_t admitted = 0;        ///< handed to a shard
  std::uint64_t shed = 0;            ///< rejected at admission (both kinds)
  std::uint64_t shed_queue_full = 0; ///< rejected: class/queue capacity
  std::uint64_t shed_deadline = 0;   ///< rejected: deadline unmeetable
  std::uint64_t completed = 0;       ///< admitted requests whose promise resolved
  std::array<std::uint64_t, kNumPriorities> admitted_by_class{};
  std::array<std::uint64_t, kNumPriorities> shed_by_class{};
  std::uint64_t replicated_model_sets = 0;  ///< distinct sets cloned per-shard
};

/// Registry mirrors under "serve.router." / "serve.shard.<i>." —
/// docs/OBSERVABILITY.md. Same pattern as ServiceMetrics: lock-free
/// counters/gauges updated alongside RouterCounters, readable without
/// the router mutex.
struct RouterMetrics {
  RouterMetrics(obs::MetricRegistry& registry, int num_shards);

  obs::Counter& requests;
  obs::Counter& admitted;
  obs::Counter& shed;
  obs::Counter& shed_queue_full;
  obs::Counter& shed_deadline;
  obs::Counter& completed;
  std::array<obs::Counter*, kNumPriorities> admitted_by_class;
  std::array<obs::Counter*, kNumPriorities> shed_by_class;
  obs::Histogram& est_wait_ms;  ///< admission-time wait estimate of the chosen shard
  std::vector<obs::Gauge*> shard_queued;  ///< serve.shard.<i>.queued
};

class InferenceRouter {
 public:
  explicit InferenceRouter(RouterConfig config = {});
  /// Drains every shard (their own destructors stop pools/flushers).
  ~InferenceRouter();

  InferenceRouter(const InferenceRouter&) = delete;
  InferenceRouter& operator=(const InferenceRouter&) = delete;

  /// Routes one inference request. The future ALWAYS resolves: with the
  /// output tensor, with a shard-side error (serve/errors.hpp), or —
  /// when admission sheds the request — with ShedError (queue full) or
  /// DeadlineExceededError (deadline unmeetable), set before the
  /// request touches any shard.
  std::future<nn::Tensor> submit(std::shared_ptr<const LacoModels> models, ModelKind kind,
                                 nn::Tensor input,  // analyze-ok(tensor-by-value): sink, moved into the shard
                                 Priority priority = Priority::kBatch)
      LACO_EXCLUDES(mutex_);

  /// Blocks until every admitted request has completed.
  void drain() LACO_EXCLUDES(mutex_);

  RouterCounters counters() const LACO_EXCLUDES(mutex_);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard introspection (counters, breaker state, latency snapshots).
  InferenceService& shard(int i) { return *shards_.at(static_cast<std::size_t>(i)); }
  const InferenceService& shard(int i) const { return *shards_.at(static_cast<std::size_t>(i)); }
  /// Admitted-but-uncompleted requests on shard `i` right now.
  std::size_t shard_queued(int i) const LACO_EXCLUDES(mutex_);
  /// Shard `i`'s current per-item cost EWMA (ms).
  double shard_cost_estimate_ms(int i) const LACO_EXCLUDES(mutex_);

  /// Latency (ms) of admitted requests across all shards (merged
  /// per-shard reservoirs; use serve::percentile for p50/p99).
  std::vector<double> latency_snapshot_ms() const;

  /// The model set shard `i` actually serves for `models` (its replica,
  /// or `models` itself when replication is off / not yet routed).
  std::shared_ptr<const LacoModels> replica(const std::shared_ptr<const LacoModels>& models,
                                            int i) const LACO_EXCLUDES(mutex_);

  const RouterConfig& config() const { return config_; }

 private:
  /// Completion callback installed on shard `i` (runs on its worker or
  /// submitting thread, no service lock held).
  void on_shard_complete(int i, const CompletionInfo& info) LACO_EXCLUDES(mutex_);
  /// Shard's replica for this model set, cloning on first sight.
  std::shared_ptr<const LacoModels> replica_locked(
      const std::shared_ptr<const LacoModels>& models, int i) LACO_REQUIRES(mutex_);

  RouterConfig config_;
  RouterMetrics metrics_;
  std::vector<std::unique_ptr<InferenceService>> shards_;
  mutable Mutex mutex_;
  std::vector<ShardAdmission> admissions_ LACO_GUARDED_BY(mutex_);
  RouterCounters counters_ LACO_GUARDED_BY(mutex_);
  /// replicas_[source set] → one replica per shard ([0] = source).
  std::map<const LacoModels*, std::vector<std::shared_ptr<const LacoModels>>> replicas_
      LACO_GUARDED_BY(mutex_);
  std::uint64_t pick_counter_ LACO_GUARDED_BY(mutex_) = 0;  ///< p2c stream position
};

/// A CongestionPenalty remote-forward closure backed by `router`: f's
/// pre-assembled input goes in as a kCongestion request at `priority`
/// and the call blocks on the result. Throws whatever the future holds
/// (ShedError, DeadlineExceededError, CircuitOpenError, model errors) —
/// the penalty catches and falls back to its local path
/// (laco/congestion_penalty.hpp RemoteCongestionForward).
RemoteCongestionForward make_penalty_remote(InferenceRouter& router,
                                            std::shared_ptr<const LacoModels> models,
                                            Priority priority = Priority::kInteractive);

}  // namespace laco::serve
