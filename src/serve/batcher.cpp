#include "serve/batcher.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "nn/ops.hpp"
#include "plan/plan_cache.hpp"
#include "util/failpoint.hpp"

namespace laco::serve {

namespace {

/// Compiled-plan fast path for one stacked batch: looks up (or
/// compiles) the plan for this (network, kind, shape) and replays it.
/// Returns an undefined tensor when plans are disabled or compilation
/// fell back (unsupported op) — the caller then runs eagerly.
nn::Tensor try_plan_forward(const LacoModels& models,
                            const std::shared_ptr<const LacoModels>& anchor, ModelKind kind,
                            const nn::Tensor& stacked) {
  if (!plan::plans_enabled()) return nn::Tensor();
  const void* identity = kind == ModelKind::kCongestion
                             ? static_cast<const void*>(models.congestion.get())
                             : static_cast<const void*>(models.lookahead.get());
  plan::PlanKey key{identity, static_cast<int>(kind), plan::shape_signature({stacked})};
  auto plan_ptr = plan::shared_plan_cache().get_or_compile(
      key, std::static_pointer_cast<const void>(anchor), [&]() {
        return plan::compile(
            [&models, kind](const std::vector<nn::Tensor>& in) {
              nn::NoGradGuard guard;  // compile() guards too; keep it explicit
              return kind == ModelKind::kCongestion
                         ? models.congestion->forward(in[0])
                         : models.lookahead->forward(in[0]).prediction;
            },
            {stacked});
      });
  if (!plan_ptr) return nn::Tensor();
  // Per-worker workspace: reused across batches, so steady-state plan
  // forwards allocate only the output tensor.
  thread_local plan::Workspace workspace;
  return plan_ptr->run({stacked}, workspace);
}

}  // namespace

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCongestion: return "congestion";
    case ModelKind::kLookAhead: return "lookahead";
  }
  return "?";
}

Batcher::Batcher(BatcherConfig config) : config_(config) {
  config_.max_batch = std::max(1, config_.max_batch);
  config_.max_linger_ms = std::max(0.0, config_.max_linger_ms);
}

Batcher::BucketKey Batcher::key_of(const BatchItem& item) {
  return {item.models.get(), static_cast<int>(item.kind), item.input.dim(1),
          item.input.dim(2), item.input.dim(3)};
}

std::optional<Batch> Batcher::add(BatchItem item) {
  if (!item.input.defined() || item.input.shape().size() != 4 || item.input.dim(0) != 1) {
    throw std::invalid_argument("Batcher::add: input must be a [1, C, H, W] tensor");
  }
  if (!item.models) throw std::invalid_argument("Batcher::add: null model set");
  auto& bucket = buckets_[key_of(item)];
  bucket.push_back(std::move(item));
  ++pending_;
  if (static_cast<int>(bucket.size()) < config_.max_batch) return std::nullopt;
  Batch batch;
  batch.items = std::move(bucket);
  buckets_.erase(key_of(batch.items.front()));
  pending_ -= batch.items.size();
  return batch;
}

std::vector<Batch> Batcher::flush_due(std::chrono::steady_clock::time_point now, bool force) {
  const auto linger = std::chrono::duration<double, std::milli>(config_.max_linger_ms);
  std::vector<Batch> due;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    auto& bucket = it->second;
    // Items append in arrival order, so the oldest is at the front.
    const bool aged = !bucket.empty() && (now - bucket.front().enqueue_time) >= linger;
    if (force || aged) {
      Batch batch;
      batch.items = std::move(bucket);
      pending_ -= batch.items.size();
      due.push_back(std::move(batch));
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

std::size_t Batcher::pending() const { return pending_; }

nn::Tensor take_sample(const nn::Tensor& batch, int n) {
  if (batch.shape().size() != 4) throw std::invalid_argument("take_sample: expected NCHW");
  if (n < 0 || n >= batch.dim(0)) throw std::out_of_range("take_sample: sample index");
  const std::size_t sample =
      static_cast<std::size_t>(batch.dim(1)) * batch.dim(2) * batch.dim(3);
  nn::Tensor out = nn::Tensor::zeros({1, batch.dim(1), batch.dim(2), batch.dim(3)});
  std::memcpy(out.data().data(), batch.data().data() + static_cast<std::size_t>(n) * sample,
              sample * sizeof(float));
  return out;
}

nn::Tensor forward_batch(const Batch& batch) {
  nn::NoGradGuard guard;
  LACO_FAILPOINT("serve.forward");
  std::vector<nn::Tensor> inputs;
  inputs.reserve(batch.items.size());
  for (const BatchItem& item : batch.items) inputs.push_back(item.input);
  const nn::Tensor stacked = nn::stack_batch(inputs);

  const LacoModels& models = *batch.items.front().models;
  const ModelKind kind = batch.items.front().kind;
  if (kind == ModelKind::kCongestion && !models.congestion) {
    throw std::runtime_error("forward_batch: model set has no f");
  }
  if (kind == ModelKind::kLookAhead && !models.lookahead) {
    throw std::runtime_error("forward_batch: model set has no g");
  }

  nn::Tensor planned = try_plan_forward(models, batch.items.front().models, kind, stacked);
  if (planned.defined()) return planned;

  if (kind == ModelKind::kCongestion) return models.congestion->forward(stacked);
  return models.lookahead->forward(stacked).prediction;
}

void deliver_batch(Batch& batch, const nn::Tensor& output) {
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    batch.items[i].result.set_value(take_sample(output, static_cast<int>(i)));
  }
}

void fail_batch(Batch& batch, std::exception_ptr error) {
  for (BatchItem& item : batch.items) {
    // A promise whose value was already set cannot fail again; guard so
    // one satisfied promise cannot mask the batch error for the rest.
    try {
      item.result.set_exception(error);
    } catch (const std::future_error&) {
    }
  }
}

void run_batch(Batch batch) {
  if (batch.items.empty()) return;
  try {
    const nn::Tensor output = forward_batch(batch);
    deliver_batch(batch, output);
  } catch (...) {
    fail_batch(batch, std::current_exception());
  }
}

}  // namespace laco::serve
