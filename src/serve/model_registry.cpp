#include "serve/model_registry.hpp"

#include <stdexcept>
#include <string>

#include "laco/model_zoo.hpp"
#include "models/congestion_fcn.hpp"
#include "models/lookahead_simvp.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace laco::serve {
namespace {

void freeze(const nn::Module& module) {
  for (nn::Tensor p : module.parameters()) {
    // Conditional write: frozen weights are shared read-only across
    // threads, so avoid dirtying them when already frozen.
    if (p.requires_grad()) p.set_requires_grad(false);
  }
}

/// Drops compiled plans keyed on a model set's networks. Called on
/// eviction/clear so a later load reusing the heap address can never
/// resolve to a stale plan.
void invalidate_plans(const LacoModels& models) {
  if (models.congestion) plan::shared_plan_cache().invalidate(models.congestion.get());
  if (models.lookahead) plan::shared_plan_cache().invalidate(models.lookahead.get());
}

/// Copies parameter values src → dst positionally. Both nets were built
/// from the same config, so parameters() walks the same module tree in
/// the same depth-first order; a count or shape mismatch is a bug.
void copy_parameters(const nn::Module& src, const nn::Module& dst) {
  const std::vector<nn::Tensor> from = src.parameters();
  std::vector<nn::Tensor> to = dst.parameters();
  LACO_CHECK(from.size() == to.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    LACO_CHECK(from[i].numel() == to[i].numel());
    to[i].data() = from[i].data();
  }
}

}  // namespace

std::shared_ptr<const LacoModels> clone_frozen(const LacoModels& src) {
  auto clone = std::make_shared<LacoModels>();
  clone->scheme = src.scheme;
  clone->scale_hi = src.scale_hi;
  clone->scale_lo = src.scale_lo;
  if (src.congestion) {
    auto f = std::make_shared<CongestionFcn>(src.congestion->config());
    copy_parameters(*src.congestion, *f);
    freeze(*f);
    clone->congestion = std::move(f);
  }
  if (src.lookahead) {
    auto g = std::make_shared<LookAheadModel>(src.lookahead->config());
    copy_parameters(*src.lookahead, *g);
    freeze(*g);
    clone->lookahead = std::move(g);
  }
  return clone;
}

std::size_t model_footprint_bytes(const LacoModels& models) {
  std::int64_t scalars = 0;
  if (models.congestion) scalars += models.congestion->num_parameters();
  if (models.lookahead) scalars += models.lookahead->num_parameters();
  return static_cast<std::size_t>(scalars) * sizeof(float);
}

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(config) {}

std::shared_ptr<const LacoModels> ModelRegistry::get(const std::string& dir) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(dir);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.models;
  }
  const auto pending_it = pending_.find(dir);
  if (pending_it != pending_.end()) {
    // Another thread is loading this directory; wait on its result.
    auto future = pending_it->second;
    lock.unlock();
    return future.get();  // rethrows the loader's exception, if any
  }

  // Become the loader for this directory.
  std::promise<std::shared_ptr<const LacoModels>> promise;
  pending_.emplace(dir, promise.get_future().share());
  lock.unlock();

  std::shared_ptr<const LacoModels> shared;
  try {
    LACO_FAILPOINT("registry.load");
    auto models = std::make_shared<LacoModels>(load_models(dir));
    if (models->congestion) freeze(*models->congestion);
    if (models->lookahead) freeze(*models->lookahead);
    shared = std::move(models);
  } catch (const std::exception& e) {
    // Path-qualify the failure (corrupt checkpoint, bad manifest, fault
    // injection) and deliver it to every waiter before rethrowing; a
    // rejected load leaves no pending or cached entry behind.
    const auto wrapped = std::make_exception_ptr(std::runtime_error(
        "ModelRegistry: failed to load model set from '" + dir + "': " + e.what()));
    lock.lock();
    pending_.erase(dir);
    lock.unlock();
    promise.set_exception(wrapped);
    std::rethrow_exception(wrapped);
  } catch (...) {
    lock.lock();
    pending_.erase(dir);
    lock.unlock();
    promise.set_exception(std::current_exception());
    throw;
  }

  lock.lock();
  ++stats_.misses;
  lru_.push_front(dir);
  Entry entry;
  entry.models = shared;
  entry.bytes = model_footprint_bytes(*shared);
  entry.lru_pos = lru_.begin();
  stats_.resident_bytes += entry.bytes;
  entries_.emplace(dir, std::move(entry));
  stats_.resident_models = entries_.size();
  enforce_budget_locked();
  pending_.erase(dir);
  lock.unlock();
  promise.set_value(shared);
  return shared;
}

bool ModelRegistry::resident(const std::string& dir) const {
  MutexLock lock(mutex_);
  return entries_.count(dir) != 0;
}

RegistryStats ModelRegistry::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void ModelRegistry::clear() {
  MutexLock lock(mutex_);
  for (const auto& [dir, entry] : entries_) invalidate_plans(*entry.models);
  entries_.clear();
  lru_.clear();
  stats_.resident_models = 0;
  stats_.resident_bytes = 0;
}

void ModelRegistry::enforce_budget_locked() {
  while (entries_.size() > 1 && stats_.resident_bytes > config_.memory_budget_bytes) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    invalidate_plans(*it->second.models);
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.resident_models = entries_.size();
}

ModelRegistry& shared_registry() {
  static ModelRegistry registry;
  return registry;
}

}  // namespace laco::serve
