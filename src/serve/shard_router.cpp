#include "serve/shard_router.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "serve/errors.hpp"
#include "serve/model_registry.hpp"

namespace laco::serve {
namespace {

/// splitmix64 finalizer — deterministic power-of-two-choices candidate
/// stream (same construction as service.cpp's retry jitter).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string shard_metric(int i, const char* leaf) {
  return "serve.shard." + std::to_string(i) + "." + leaf;
}

}  // namespace

RouterConfig RouterConfig::validated() const {
  RouterConfig v = *this;
  v.num_shards = std::max(1, v.num_shards);
  v.shard = v.shard.validated();
  v.admission = v.admission.validated();
  return v;
}

RouterMetrics::RouterMetrics(obs::MetricRegistry& registry, int num_shards)
    : requests(registry.counter("serve.router.requests")),
      admitted(registry.counter("serve.router.admitted")),
      shed(registry.counter("serve.router.shed")),
      shed_queue_full(registry.counter("serve.router.shed_queue_full")),
      shed_deadline(registry.counter("serve.router.shed_deadline")),
      completed(registry.counter("serve.router.completed")),
      est_wait_ms(registry.histogram("serve.router.est_wait_ms")) {
  for (int c = 0; c < kNumPriorities; ++c) {
    const char* cls = to_string(static_cast<Priority>(c));
    admitted_by_class[static_cast<std::size_t>(c)] =
        &registry.counter(std::string("serve.router.admitted.") + cls);
    shed_by_class[static_cast<std::size_t>(c)] =
        &registry.counter(std::string("serve.router.shed.") + cls);
  }
  shard_queued.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shard_queued.push_back(&registry.gauge(shard_metric(i, "queued")));
  }
}

InferenceRouter::InferenceRouter(RouterConfig config)
    : config_(config.validated()),
      metrics_(obs::MetricRegistry::global(), config_.num_shards) {
  shards_.reserve(static_cast<std::size_t>(config_.num_shards));
  {
    MutexLock lock(mutex_);
    admissions_.reserve(static_cast<std::size_t>(config_.num_shards));
    for (int i = 0; i < config_.num_shards; ++i) {
      admissions_.emplace_back(config_.admission);
    }
  }
  for (int i = 0; i < config_.num_shards; ++i) {
    ServiceConfig shard_config = config_.shard;
    shard_config.on_complete = [this, i](const CompletionInfo& info) {
      on_shard_complete(i, info);
    };
    shards_.push_back(std::make_unique<InferenceService>(std::move(shard_config)));
  }
}

InferenceRouter::~InferenceRouter() {
  // Shards drain in their own destructors; draining here first keeps
  // completion hooks (which touch this router) finished before any
  // member is torn down.
  drain();
}

std::future<nn::Tensor> InferenceRouter::submit(std::shared_ptr<const LacoModels> models,
                                                ModelKind kind,
                                                nn::Tensor input,  // analyze-ok(tensor-by-value): sink
                                                Priority priority) {
  obs::TraceSpan span("serve.router.submit", "serve");
  const auto now = std::chrono::steady_clock::now();
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (config_.shard.deadline_ms > 0.0) {
    deadline = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(config_.shard.deadline_ms));
  }
  const auto cls = static_cast<std::size_t>(priority);

  int chosen = -1;
  auto outcome = AdmissionOutcome::kAdmit;
  double est_wait_ms = 0.0;
  std::shared_ptr<const LacoModels> routed;
  {
    MutexLock lock(mutex_);
    ++counters_.requests;
    metrics_.requests.add(1);

    // Power-of-two-choices: two candidates from the deterministic
    // stream, the smaller estimated wait evaluated first. When the
    // better candidate sheds for capacity the other may still admit
    // (its class cap is per shard); a deadline shed on the less-loaded
    // shard is final — the other's estimate is only worse.
    const auto n = static_cast<std::uint64_t>(shards_.size());
    const std::uint64_t draw = pick_counter_++;
    int a = static_cast<int>(mix64(config_.p2c_seed ^ (2 * draw)) % n);
    int b = static_cast<int>(mix64(config_.p2c_seed ^ (2 * draw + 1)) % n);
    if (admissions_[static_cast<std::size_t>(b)].estimated_wait_ms() <
        admissions_[static_cast<std::size_t>(a)].estimated_wait_ms()) {
      std::swap(a, b);
    }
    chosen = a;
    outcome = admissions_[static_cast<std::size_t>(a)].consider(priority, now, deadline);
    if (outcome == AdmissionOutcome::kShedQueueFull && b != a) {
      const auto alt = admissions_[static_cast<std::size_t>(b)].consider(priority, now, deadline);
      if (alt == AdmissionOutcome::kAdmit) {
        chosen = b;
        outcome = alt;
      }
    }
    ShardAdmission& admission = admissions_[static_cast<std::size_t>(chosen)];
    est_wait_ms = admission.estimated_wait_ms();
    if (outcome == AdmissionOutcome::kAdmit) {
      admission.on_admit(priority);
      ++counters_.admitted;
      ++counters_.admitted_by_class[cls];
      metrics_.admitted.add(1);
      metrics_.admitted_by_class[cls]->add(1);
      metrics_.est_wait_ms.observe(est_wait_ms);
      metrics_.shard_queued[static_cast<std::size_t>(chosen)]->set(
          static_cast<double>(admission.queued()));
      routed = replica_locked(models, chosen);
    } else {
      ++counters_.shed;
      ++counters_.shed_by_class[cls];
      metrics_.shed.add(1);
      metrics_.shed_by_class[cls]->add(1);
      if (outcome == AdmissionOutcome::kShedQueueFull) {
        ++counters_.shed_queue_full;
        metrics_.shed_queue_full.add(1);
      } else {
        ++counters_.shed_deadline;
        metrics_.shed_deadline.add(1);
      }
    }
  }

  if (outcome != AdmissionOutcome::kAdmit) {
    // Shed: the future fails immediately, before the request touches
    // any shard — no queue space consumed, no forward pass burned.
    std::promise<nn::Tensor> promise;
    std::future<nn::Tensor> future = promise.get_future();
    if (outcome == AdmissionOutcome::kShedQueueFull) {
      promise.set_exception(std::make_exception_ptr(
          ShedError(std::string("InferenceRouter: shed ") + to_string(priority) +
                    " request — shard queues at class capacity")));
    } else {
      promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
          "InferenceRouter: deadline (" + std::to_string(config_.shard.deadline_ms) +
          " ms) unmeetable at admission (estimated wait " + std::to_string(est_wait_ms) +
          " ms on shard " + std::to_string(chosen) + ")")));
    }
    return future;
  }

  // Mutex released above on purpose: shard submit can block on pool
  // backpressure, and its completion hooks re-enter this router.
  return shards_[static_cast<std::size_t>(chosen)]->submit(std::move(routed), kind,
                                                           std::move(input),
                                                           static_cast<int>(priority));
}

void InferenceRouter::on_shard_complete(int i, const CompletionInfo& info) {
  // The tag is the priority class we stamped at submit; anything else
  // means the shard was used directly (introspection/tests) — account
  // it to the default class so totals still balance.
  const auto pri = (info.tag >= 0 && info.tag < kNumPriorities)
                       ? static_cast<Priority>(info.tag)
                       : Priority::kBatch;
  MutexLock lock(mutex_);
  ShardAdmission& admission = admissions_[static_cast<std::size_t>(i)];
  admission.on_complete(pri, info.exec_ms_per_item);
  ++counters_.completed;
  metrics_.completed.add(1);
  metrics_.shard_queued[static_cast<std::size_t>(i)]->set(
      static_cast<double>(admission.queued()));
}

std::shared_ptr<const LacoModels> InferenceRouter::replica_locked(
    const std::shared_ptr<const LacoModels>& models, int i) {
  if (!config_.replicate_models || shards_.size() == 1) return models;
  auto it = replicas_.find(models.get());
  if (it == replicas_.end()) {
    // First sight of this model set: clone one frozen replica per extra
    // shard, under the router mutex. One-time cost per set (parameter
    // copy); concurrent submits of the same set stall behind it instead
    // of racing to clone.
    std::vector<std::shared_ptr<const LacoModels>> reps;
    reps.reserve(shards_.size());
    reps.push_back(models);
    for (std::size_t s = 1; s < shards_.size(); ++s) reps.push_back(clone_frozen(*models));
    it = replicas_.emplace(models.get(), std::move(reps)).first;
    ++counters_.replicated_model_sets;
  }
  return it->second[static_cast<std::size_t>(i)];
}

void InferenceRouter::drain() {
  for (const auto& shard : shards_) shard->drain();
}

RouterCounters InferenceRouter::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

std::size_t InferenceRouter::shard_queued(int i) const {
  MutexLock lock(mutex_);
  return admissions_.at(static_cast<std::size_t>(i)).queued();
}

double InferenceRouter::shard_cost_estimate_ms(int i) const {
  MutexLock lock(mutex_);
  return admissions_.at(static_cast<std::size_t>(i)).cost_estimate_ms();
}

std::vector<double> InferenceRouter::latency_snapshot_ms() const {
  std::vector<double> merged;
  for (const auto& shard : shards_) {
    const std::vector<double> part = shard->latency_snapshot_ms();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  return merged;
}

std::shared_ptr<const LacoModels> InferenceRouter::replica(
    const std::shared_ptr<const LacoModels>& models, int i) const {
  MutexLock lock(mutex_);
  const auto it = replicas_.find(models.get());
  if (it == replicas_.end()) return models;
  return it->second.at(static_cast<std::size_t>(i));
}

RemoteCongestionForward make_penalty_remote(InferenceRouter& router,
                                            std::shared_ptr<const LacoModels> models,
                                            Priority priority) {
  return [&router, models = std::move(models), priority](const nn::Tensor& f_input) {
    // .get() rethrows the shard-side (or shed) error into the caller —
    // CongestionPenalty catches it and falls back to its local path.
    return router.submit(models, ModelKind::kCongestion, f_input, priority).get();
  };
}

}  // namespace laco::serve
