// Circuit breaker: fail fast when a dependency is persistently broken,
// probe for recovery after a cooldown. Classic three-state machine:
//
//                 N consecutive failures
//      CLOSED ───────────────────────────▶ OPEN
//        ▲                                  │ cooldown elapsed
//        │ probe succeeds                   ▼
//        └────────────────────────────── HALF-OPEN
//                                           │ probe fails
//                                           └──────▶ OPEN (new cooldown)
//
// CLOSED admits everything; OPEN rejects everything; HALF-OPEN admits
// exactly one in-flight probe. The class is passive and externally
// synchronized (InferenceService holds one per (model set, kind) under
// its mutex), and takes `now` as a parameter so tests drive the state
// machine with fake clocks — no hidden wall-clock reads.
#pragma once

#include <chrono>
#include <cstdint>

namespace laco::serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 5;    ///< consecutive failures that open the breaker
  double cooldown_ms = 250.0;   ///< open → half-open probe delay
};

class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(BreakerConfig config = {});

  /// Whether a request may proceed at `now`. An OPEN breaker whose
  /// cooldown has elapsed transitions to HALF-OPEN and admits the call
  /// as its single probe; further calls are rejected until the probe
  /// reports back via record_success / record_failure.
  bool allow(TimePoint now);

  void record_success();
  void record_failure(TimePoint now);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Lifetime count of transitions into OPEN (from CLOSED or HALF-OPEN).
  std::uint64_t times_opened() const { return times_opened_; }
  const BreakerConfig& config() const { return config_; }

 private:
  void open(TimePoint now);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t times_opened_ = 0;
  TimePoint opened_at_{};
};

}  // namespace laco::serve
