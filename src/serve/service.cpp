#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace laco::serve {

InferenceService::InferenceService(ServiceConfig config)
    : config_(config),
      pool_(config.num_threads, config.queue_capacity),
      batcher_(config.batcher) {
  config_.latency_reservoir = std::max<std::size_t>(1, config_.latency_reservoir);
  flusher_ = std::thread([this] { flusher_loop(); });
}

InferenceService::~InferenceService() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  flusher_wakeup_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  drain();
  pool_.shutdown();
}

std::future<nn::Tensor> InferenceService::submit(std::shared_ptr<const LacoModels> models,
                                                 ModelKind kind, nn::Tensor input) {
  BatchItem item;
  item.models = std::move(models);
  item.kind = kind;
  item.input = std::move(input);
  item.enqueue_time = std::chrono::steady_clock::now();
  std::future<nn::Tensor> future = item.result.get_future();

  std::optional<Batch> full;
  {
    MutexLock lock(mutex_);
    if (stopping_) throw std::runtime_error("InferenceService::submit after shutdown");
    ++counters_.requests;
    ++counters_.in_flight;
    counters_.max_in_flight = std::max(counters_.max_in_flight, counters_.in_flight);
    full = batcher_.add(std::move(item));
  }
  if (full) enqueue(std::move(*full));
  return future;
}

void InferenceService::enqueue(Batch batch) {
  {
    MutexLock lock(mutex_);
    ++counters_.batches;
    counters_.batched_items += batch.items.size();
  }
  // The pool applies backpressure: submit blocks while its queue is
  // full. Never call this while holding mutex_ — workers need it to
  // record completions.
  auto shared = std::make_shared<Batch>(std::move(batch));
  pool_.submit([this, shared] { execute(std::move(*shared)); });
}

void InferenceService::execute(Batch batch) {
  const std::size_t n = batch.items.size();
  std::vector<std::chrono::steady_clock::time_point> enqueued;
  enqueued.reserve(n);
  for (const BatchItem& item : batch.items) enqueued.push_back(item.enqueue_time);

  run_batch(std::move(batch));

  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lock(mutex_);
    for (const auto& t0 : enqueued) {
      const double ms = std::chrono::duration<double, std::milli>(now - t0).count();
      if (latencies_ms_.size() < config_.latency_reservoir) {
        latencies_ms_.push_back(ms);
      } else {
        latencies_ms_[latency_next_ % config_.latency_reservoir] = ms;
      }
      ++latency_next_;
    }
    counters_.completed += n;
    counters_.in_flight -= n;
  }
  drained_.notify_all();
}

void InferenceService::drain() {
  std::vector<Batch> due;
  {
    MutexLock lock(mutex_);
    due = batcher_.flush_due(std::chrono::steady_clock::now(), /*force=*/true);
  }
  for (Batch& batch : due) enqueue(std::move(batch));
  MutexLock lock(mutex_);
  while (counters_.in_flight != 0 || batcher_.pending() != 0) drained_.wait(mutex_);
}

ServiceCounters InferenceService::counters() const {
  ServiceCounters c;
  {
    MutexLock lock(mutex_);
    c = counters_;
    c.pending = batcher_.pending();
  }
  c.pool_queue_depth = pool_.queue_depth();
  c.pool_max_queue_depth = pool_.max_queue_depth();
  return c;
}

std::vector<double> InferenceService::latency_snapshot_ms() const {
  MutexLock lock(mutex_);
  return latencies_ms_;
}

void InferenceService::flusher_loop() {
  // Microsecond resolution: a sub-millisecond linger must not truncate
  // to a zero-length (busy) wait.
  const auto tick = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::duration<double, std::milli>(
          std::max(0.1, config_.batcher.max_linger_ms * 0.5)));
  for (;;) {
    std::vector<Batch> due;
    bool exit_after_flush = false;
    {
      MutexLock lock(mutex_);
      // Plain timed wait, no predicate lambda: a spurious or early
      // wakeup just runs one extra (harmless) flush_due pass, and the
      // thread-safety analysis sees every guarded read under the lock.
      if (!stopping_) flusher_wakeup_.wait_for(mutex_, tick);
      exit_after_flush = stopping_;
      due = batcher_.flush_due(std::chrono::steady_clock::now(), /*force=*/stopping_);
    }
    for (Batch& batch : due) enqueue(std::move(batch));
    if (exit_after_flush) return;
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 *
                                static_cast<double>(values.size()));
  const std::size_t idx =
      static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace laco::serve
