#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "serve/errors.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "util/timer.hpp"

namespace laco::serve {
namespace {

/// splitmix64 finalizer — deterministic jitter stream for retry backoff
/// (same construction as util/failpoint.cpp; no global RNG, no locks).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ServiceConfig ServiceConfig::validated() const {
  ServiceConfig v = *this;
  // Hard invariants: negative durations/counts are caller bugs.
  LACO_CHECK(v.batcher.max_linger_ms >= 0.0);
  LACO_CHECK(v.deadline_ms >= 0.0);
  LACO_CHECK(v.max_retries >= 0);
  LACO_CHECK(v.retry_backoff_ms >= 0.0);
  LACO_CHECK(v.retry_backoff_max_ms >= 0.0);
  // Soft knobs clamp to safe minimums. A zero linger would make the
  // flusher (which sleeps max_linger_ms / 2 per tick) spin.
  v.num_threads = std::max(1, v.num_threads);
  v.queue_capacity = std::max<std::size_t>(1, v.queue_capacity);
  v.batcher.max_batch = std::max(1, v.batcher.max_batch);
  v.batcher.max_linger_ms = std::max(kMinLingerMs, v.batcher.max_linger_ms);
  v.retry_backoff_max_ms = std::max(v.retry_backoff_max_ms, v.retry_backoff_ms);
  v.latency_reservoir = std::max<std::size_t>(1, v.latency_reservoir);
  return v;
}

ServiceMetrics::ServiceMetrics(obs::MetricRegistry& registry)
    : requests(registry.counter("serve.requests")),
      completed(registry.counter("serve.completed")),
      batches(registry.counter("serve.batches")),
      batched_items(registry.counter("serve.batched_items")),
      retried_batches(registry.counter("serve.retried_batches")),
      failed_batches(registry.counter("serve.failed_batches")),
      deadline_expired(registry.counter("serve.deadline_expired")),
      breaker_rejected(registry.counter("serve.breaker_rejected")),
      breaker_opens(registry.counter("serve.breaker_opens")),
      in_flight(registry.gauge("serve.in_flight")),
      max_in_flight(registry.gauge("serve.max_in_flight")),
      latency_ms(registry.histogram("serve.latency_ms")),
      batch_size(registry.histogram(
          "serve.batch_size",
          obs::Histogram::exponential_bounds(1.0, 1024.0, 2.0))) {}

InferenceService::InferenceService(ServiceConfig config)
    : config_(config.validated()),
      metrics_(obs::MetricRegistry::global()),
      pool_(config_.num_threads, config_.queue_capacity),
      batcher_(config_.batcher) {
  flusher_ = std::thread([this] { flusher_loop(); });
}

InferenceService::~InferenceService() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  flusher_wakeup_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  drain();
  pool_.shutdown();
}

std::future<nn::Tensor> InferenceService::submit(std::shared_ptr<const LacoModels> models,
                                                 ModelKind kind,
                                                 nn::Tensor input,  // analyze-ok(tensor-by-value): sink
                                                 int tag) {
  const auto now = std::chrono::steady_clock::now();
  BatchItem item;
  item.models = std::move(models);
  item.kind = kind;
  item.input = std::move(input);
  item.enqueue_time = now;
  item.tag = tag;
  if (config_.deadline_ms > 0.0) {
    item.deadline =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(config_.deadline_ms));
  }
  std::future<nn::Tensor> future = item.result.get_future();

  std::optional<Batch> full;
  {
    MutexLock lock(mutex_);
    if (stopping_) throw std::runtime_error("InferenceService::submit after shutdown");
    ++counters_.requests;
    metrics_.requests.add(1);

    // Breaker gate: a persistently failing (model set, kind) fails fast
    // instead of queueing doomed work onto the pool.
    const auto breaker_it = breakers_.find(breaker_key(item.models.get(), kind));
    if (breaker_it != breakers_.end() && !breaker_it->second.allow(now)) {
      ++counters_.breaker_rejected;
      ++counters_.completed;
      metrics_.breaker_rejected.add(1);
      metrics_.completed.add(1);
      item.result.set_exception(std::make_exception_ptr(CircuitOpenError(
          std::string("InferenceService: circuit open for ") + to_string(kind) +
          " model, failing fast (cooldown " +
          std::to_string(breaker_it->second.config().cooldown_ms) + " ms)")));
      lock.unlock();
      if (config_.on_complete) {
        CompletionInfo info;
        info.kind = kind;
        info.outcome = CompletionInfo::Outcome::kBreakerRejected;
        info.tag = tag;
        config_.on_complete(info);
      }
      return future;
    }

    ++counters_.in_flight;
    counters_.max_in_flight = std::max(counters_.max_in_flight, counters_.in_flight);
    metrics_.in_flight.set(static_cast<double>(counters_.in_flight));
    metrics_.max_in_flight.record_max(static_cast<double>(counters_.max_in_flight));
    full = batcher_.add(std::move(item));
  }
  if (full) enqueue(std::move(*full));
  return future;
}

void InferenceService::enqueue(Batch batch) {
  {
    MutexLock lock(mutex_);
    ++counters_.batches;
    counters_.batched_items += batch.items.size();
    metrics_.batches.add(1);
    metrics_.batched_items.add(batch.items.size());
    metrics_.batch_size.observe(static_cast<double>(batch.items.size()));
  }
  // The pool applies backpressure: submit blocks while its queue is
  // full. Never call this while holding mutex_ — workers need it to
  // record completions.
  auto shared = std::make_shared<Batch>(std::move(batch));
  pool_.submit([this, shared] { execute(std::move(*shared)); });
}

std::chrono::duration<double, std::milli> InferenceService::backoff_delay(int attempt) {
  const double base = config_.retry_backoff_ms * std::pow(2.0, attempt);
  const double capped = std::min(base, config_.retry_backoff_max_ms);
  // Deterministic jitter in [0.75, 1.25): decorrelates retries of
  // concurrently failing batches without a shared RNG or lock.
  const std::uint64_t n = jitter_counter_.fetch_add(1, std::memory_order_relaxed);
  const double unit =
      static_cast<double>(mix64(config_.retry_jitter_seed ^ mix64(n)) >> 11) * 0x1.0p-53;
  return std::chrono::duration<double, std::milli>(capped * (0.75 + 0.5 * unit));
}

void InferenceService::execute(Batch batch) {
  const std::size_t n = batch.items.size();

  // Deadline triage: items already expired fail with a typed error now
  // instead of burning (a share of) a forward pass.
  const auto start = std::chrono::steady_clock::now();
  Batch live;
  Batch expired;
  for (BatchItem& item : batch.items) {
    (item.deadline < start ? expired : live).items.push_back(std::move(item));
  }
  if (!expired.items.empty()) {
    fail_batch(expired, std::make_exception_ptr(DeadlineExceededError(
                            "InferenceService: request deadline (" +
                            std::to_string(config_.deadline_ms) +
                            " ms) expired before execution")));
  }

  // Retry loop: transient failures back off and re-run the single
  // forward; permanent errors (and exhausted retries) fail only this
  // batch's futures. Nothing here can wedge the flusher or the pool.
  bool attempted = false;
  bool succeeded = false;
  std::uint64_t retries_used = 0;
  double exec_ms = 0.0;  ///< forward wall time, incl. retries/backoff
  if (!live.items.empty()) {
    attempted = true;
    obs::TraceSpan span("serve.execute_batch", "serve");
    Timer exec_timer;
    for (int attempt = 0;; ++attempt) {
      try {
        const nn::Tensor output = forward_batch(live);
        deliver_batch(live, output);
        succeeded = true;
        break;
      } catch (const TransientError&) {
        if (attempt >= config_.max_retries) {
          fail_batch(live, std::current_exception());
          break;
        }
        ++retries_used;
        std::this_thread::sleep_for(backoff_delay(attempt));
      } catch (...) {
        fail_batch(live, std::current_exception());
        break;
      }
    }
    exec_ms = exec_timer.seconds() * 1e3;
  }

  const auto now = std::chrono::steady_clock::now();
  const auto latency_of = [&now](const BatchItem& item) {
    return std::chrono::duration<double, std::milli>(now - item.enqueue_time).count();
  };

  // Completion reports — after the promises resolved, with no lock held
  // (the hook may take the router's lock; never nest it under ours),
  // and BEFORE the in_flight decrement below: drain() returning must
  // imply every hook has run, or router-side accounting would trail.
  if (config_.on_complete) {
    const double exec_per_item =
        live.items.empty() ? 0.0 : exec_ms / static_cast<double>(live.items.size());
    CompletionInfo info;
    for (const BatchItem& item : expired.items) {
      info.kind = item.kind;
      info.outcome = CompletionInfo::Outcome::kDeadlineExpired;
      info.tag = item.tag;
      info.latency_ms = latency_of(item);
      info.exec_ms_per_item = 0.0;
      config_.on_complete(info);
    }
    for (const BatchItem& item : live.items) {
      info.kind = item.kind;
      info.outcome = succeeded ? CompletionInfo::Outcome::kOk : CompletionInfo::Outcome::kError;
      info.tag = item.tag;
      info.latency_ms = latency_of(item);
      info.exec_ms_per_item = exec_per_item;
      config_.on_complete(info);
    }
  }

  {
    MutexLock lock(mutex_);
    for (const Batch* part : {&expired, &live}) {
      for (const BatchItem& item : part->items) {
        const double ms = latency_of(item);
        metrics_.latency_ms.observe(ms);
        if (latencies_ms_.size() < config_.latency_reservoir) {
          latencies_ms_.push_back(ms);
        } else {
          latencies_ms_[latency_next_ % config_.latency_reservoir] = ms;
        }
        ++latency_next_;
      }
    }
    counters_.completed += n;
    counters_.in_flight -= n;
    counters_.deadline_expired += expired.items.size();
    counters_.retried_batches += retries_used;
    metrics_.completed.add(n);
    metrics_.in_flight.set(static_cast<double>(counters_.in_flight));
    metrics_.deadline_expired.add(expired.items.size());
    metrics_.retried_batches.add(retries_used);
    if (attempted) {
      CircuitBreaker& breaker =
          breakers_
              .try_emplace(breaker_key(live.items.front().models.get(),
                                       live.items.front().kind),
                           config_.breaker)
              .first->second;
      const std::uint64_t opened_before = breaker.times_opened();
      if (succeeded) {
        breaker.record_success();
      } else {
        ++counters_.failed_batches;
        metrics_.failed_batches.add(1);
        breaker.record_failure(now);
      }
      counters_.breaker_opens += breaker.times_opened() - opened_before;
      metrics_.breaker_opens.add(breaker.times_opened() - opened_before);
    }
  }
  drained_.notify_all();
}

void InferenceService::drain() {
  std::vector<Batch> due;
  {
    MutexLock lock(mutex_);
    due = batcher_.flush_due(std::chrono::steady_clock::now(), /*force=*/true);
  }
  for (Batch& batch : due) enqueue(std::move(batch));
  MutexLock lock(mutex_);
  while (counters_.in_flight != 0 || batcher_.pending() != 0) drained_.wait(mutex_);
}

ServiceCounters InferenceService::counters() const {
  ServiceCounters c;
  {
    MutexLock lock(mutex_);
    c = counters_;
    c.pending = batcher_.pending();
    c.breakers_open = 0;
    for (const auto& [key, breaker] : breakers_) {
      if (breaker.state() != BreakerState::kClosed) ++c.breakers_open;
    }
  }
  c.pool_queue_depth = pool_.queue_depth();
  c.pool_max_queue_depth = pool_.max_queue_depth();
  return c;
}

BreakerState InferenceService::breaker_state(const std::shared_ptr<const LacoModels>& models,
                                             ModelKind kind) const {
  MutexLock lock(mutex_);
  const auto it = breakers_.find(breaker_key(models.get(), kind));
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state();
}

std::vector<double> InferenceService::latency_snapshot_ms() const {
  MutexLock lock(mutex_);
  return latencies_ms_;
}

void InferenceService::flusher_loop() {
  // Microsecond resolution: a sub-millisecond linger must not truncate
  // to a zero-length (busy) wait. validated() already clamps the linger
  // to kMinLingerMs, so the tick is always a real sleep.
  const auto tick = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::duration<double, std::milli>(
          std::max(ServiceConfig::kMinLingerMs * 0.5, config_.batcher.max_linger_ms * 0.5)));
  for (;;) {
    std::vector<Batch> due;
    bool exit_after_flush = false;
    {
      MutexLock lock(mutex_);
      // Plain timed wait, no predicate lambda: a spurious or early
      // wakeup just runs one extra (harmless) flush_due pass, and the
      // thread-safety analysis sees every guarded read under the lock.
      if (!stopping_) flusher_wakeup_.wait_for(mutex_, tick);
      exit_after_flush = stopping_;
      due = batcher_.flush_due(std::chrono::steady_clock::now(), /*force=*/stopping_);
    }
    for (Batch& batch : due) enqueue(std::move(batch));
    if (exit_after_flush) return;
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 *
                                static_cast<double>(values.size()));
  const std::size_t idx =
      static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace laco::serve
