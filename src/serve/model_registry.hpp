// Resident model cache layered on laco/model_zoo: each model directory
// is loaded from disk at most once per process and shared, immutable,
// across every thread that asks for it. Entries are LRU-evicted when
// the resident set exceeds a configurable memory budget; callers that
// already hold a shared_ptr keep their models alive past eviction.
//
// Thread-safety contract: the registry freezes every parameter
// (requires_grad = false) before publishing a model set, so concurrent
// forward passes over the shared weights never touch grad/parents/
// backward_fn (see nn/tensor.hpp "Concurrency" notes). Concurrent
// get() calls for the same directory coalesce into one disk load.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "laco/congestion_penalty.hpp"
#include "plan/plan_cache.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco::serve {

struct RegistryConfig {
  /// Budget for resident (cached) model parameter bytes. The most
  /// recently used model is never evicted, so a single set larger than
  /// the budget still stays resident.
  std::size_t memory_budget_bytes = 256ull << 20;
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< disk loads performed
  std::uint64_t evictions = 0;
  std::size_t resident_models = 0;
  std::size_t resident_bytes = 0;
};

/// Approximate parameter footprint of a model set (float32 bytes).
std::size_t model_footprint_bytes(const LacoModels& models);

/// Deep-copies a model set: fresh networks rebuilt from each source
/// net's config with the source's parameter values copied in, frozen
/// (requires_grad = false) before publishing. The clone has DISTINCT
/// pointer identity from the source, which is the point — the shard
/// router hands each shard its own replica so batcher buckets,
/// compiled-plan cache entries, and circuit breakers key per shard
/// instead of aliasing across the fleet.
std::shared_ptr<const LacoModels> clone_frozen(const LacoModels& src);

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  /// Returns the (frozen, shareable) model set for `dir`, loading it on
  /// first use. Throws std::runtime_error like load_models on missing or
  /// corrupt directories; a failed load is not cached.
  std::shared_ptr<const LacoModels> get(const std::string& dir) LACO_EXCLUDES(mutex_);

  /// Whether `dir` is currently resident (for tests; racy by nature).
  bool resident(const std::string& dir) const LACO_EXCLUDES(mutex_);

  RegistryStats stats() const LACO_EXCLUDES(mutex_);

  /// Drops every cached entry (in-flight shared_ptrs stay valid).
  void clear() LACO_EXCLUDES(mutex_);

  /// The compiled-plan cache hanging off this registry: plans for a
  /// model set are invalidated when the set is evicted or cleared, so
  /// a reloaded model can never hit a stale plan via pointer reuse.
  /// (Process-wide: all registries share plan::shared_plan_cache().)
  plan::PlanCache& plan_cache() const { return plan::shared_plan_cache(); }

  const RegistryConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const LacoModels> models;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  /// Evicts LRU entries until within budget, keeping at least the most
  /// recently used one.
  void enforce_budget_locked() LACO_REQUIRES(mutex_);

  RegistryConfig config_;
  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ LACO_GUARDED_BY(mutex_);
  /// In-flight loads, so concurrent get() of one dir loads once.
  std::map<std::string, std::shared_future<std::shared_ptr<const LacoModels>>> pending_
      LACO_GUARDED_BY(mutex_);
  std::list<std::string> lru_ LACO_GUARDED_BY(mutex_);  ///< front = most recently used
  RegistryStats stats_ LACO_GUARDED_BY(mutex_);
};

/// Process-wide registry shared by the CLI, services, and examples.
ModelRegistry& shared_registry();

}  // namespace laco::serve
