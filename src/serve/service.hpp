// InferenceService — the resident, concurrent, batched front door to
// the trained LacoModels. Clients submit single-sample NCHW inference
// requests and get std::future results; internally requests coalesce in
// a Batcher (size + linger flush policy) and execute on a fixed
// ThreadPool, one forward pass per batch under NoGradGuard.
//
//   submit ──▶ Batcher buckets ──(full / lingered)──▶ ThreadPool
//                                                       └─▶ run_batch ─▶ futures
//
// A flusher thread wakes every max_linger_ms/2 to cut aged partial
// batches, so a lone request is never stranded. Counters track
// requests, batches, occupancy, queue depth, and per-request latency
// (submit → result set); latency percentiles are computed from a
// bounded reservoir of recent requests.
//
// Thread-safety: submit() may be called from any number of threads.
// Results are independent tensors (no shared autograd state); model
// weights are shared read-only (see nn/tensor.hpp "Concurrency").
// Every member behind mutex_ is LACO_GUARDED_BY-annotated and the
// clang -Wthread-safety CI job proves the locking discipline at
// compile time (docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace laco::serve {

struct ServiceConfig {
  int num_threads = 4;              ///< worker pool size
  std::size_t queue_capacity = 256; ///< bounded batch queue (backpressure)
  BatcherConfig batcher;
  std::size_t latency_reservoir = 1 << 14;  ///< retained latency samples
};

struct ServiceCounters {
  std::uint64_t requests = 0;       ///< submitted
  std::uint64_t completed = 0;      ///< promises fulfilled (incl. errors)
  std::uint64_t batches = 0;        ///< forward passes executed
  std::uint64_t batched_items = 0;  ///< requests that went through batches
  std::size_t pending = 0;          ///< waiting in the batcher right now
  std::size_t in_flight = 0;        ///< submitted but not completed
  std::size_t max_in_flight = 0;
  std::size_t pool_queue_depth = 0;
  std::size_t pool_max_queue_depth = 0;
  double mean_batch_size() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_items) / static_cast<double>(batches);
  }
};

class InferenceService {
 public:
  explicit InferenceService(ServiceConfig config = {});
  /// Drains outstanding work, then stops the flusher and the pool.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Enqueues one inference request. `input` must be [1, C, H, W] with
  /// the channel count the target network expects; the tensor is taken
  /// by value and must not be mutated by the caller afterwards. The
  /// future yields the [1, C_out, H, W] output or the batch's error.
  std::future<nn::Tensor> submit(std::shared_ptr<const LacoModels> models, ModelKind kind,
                                 nn::Tensor input) LACO_EXCLUDES(mutex_);

  /// Blocks until every submitted request has completed.
  void drain() LACO_EXCLUDES(mutex_);

  ServiceCounters counters() const LACO_EXCLUDES(mutex_);

  /// Latency (ms, submit → result) of up to `latency_reservoir` recent
  /// requests, unordered. Use `percentile` for p50/p99.
  std::vector<double> latency_snapshot_ms() const LACO_EXCLUDES(mutex_);

  const ServiceConfig& config() const { return config_; }

 private:
  /// Counts the batch and hands it to the pool. Callers must NOT hold
  /// mutex_: the pool's bounded queue blocks, and workers take mutex_.
  void enqueue(Batch batch) LACO_EXCLUDES(mutex_);
  void execute(Batch batch) LACO_EXCLUDES(mutex_);
  void flusher_loop() LACO_EXCLUDES(mutex_);

  ServiceConfig config_;
  ThreadPool pool_;
  mutable Mutex mutex_;
  CondVar drained_;
  Batcher batcher_ LACO_GUARDED_BY(mutex_);
  ServiceCounters counters_ LACO_GUARDED_BY(mutex_);
  std::vector<double> latencies_ms_ LACO_GUARDED_BY(mutex_);
  std::size_t latency_next_ LACO_GUARDED_BY(mutex_) = 0;  ///< reservoir write cursor
  bool stopping_ LACO_GUARDED_BY(mutex_) = false;
  CondVar flusher_wakeup_;
  std::thread flusher_;
};

/// p in [0, 100]; nearest-rank percentile of an unsorted sample set.
double percentile(std::vector<double> values, double p);

}  // namespace laco::serve
