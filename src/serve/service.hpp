// InferenceService — the resident, concurrent, batched front door to
// the trained LacoModels. Clients submit single-sample NCHW inference
// requests and get std::future results; internally requests coalesce in
// a Batcher (size + linger flush policy) and execute on a fixed
// ThreadPool, one forward pass per batch under NoGradGuard.
//
//   submit ──▶ breaker gate ──▶ Batcher buckets ──(full / lingered)──▶ ThreadPool
//                                                                       └─▶ execute ─▶ futures
//
// A flusher thread wakes every max_linger_ms/2 to cut aged partial
// batches, so a lone request is never stranded. Counters track
// requests, batches, occupancy, queue depth, and per-request latency
// (submit → result set); latency percentiles are computed from a
// bounded reservoir of recent requests.
//
// Fault tolerance (docs/RELIABILITY.md): every future resolves — with
// the result, or with a typed error — never hangs. Per-request
// deadlines fail expired items with DeadlineExceededError before they
// burn a forward pass; batches failing with TransientError are retried
// with exponential backoff and deterministic jitter; and a per-(model
// set, kind) circuit breaker opens after consecutive batch failures so
// a persistently broken model fails fast (CircuitOpenError) instead of
// queueing doomed work, half-opening after a cooldown to probe
// recovery. A failed batch fails only its own futures; the flusher and
// pool never inherit the fault.
//
// Thread-safety: submit() may be called from any number of threads.
// Results are independent tensors (no shared autograd state); model
// weights are shared read-only (see nn/tensor.hpp "Concurrency").
// Every member behind mutex_ is LACO_GUARDED_BY-annotated and the
// clang -Wthread-safety CI job proves the locking discipline at
// compile time (docs/STATIC_ANALYSIS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/circuit_breaker.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace laco::serve {

/// Per-request completion report, delivered through
/// ServiceConfig::on_complete right after the request's promise
/// resolves. The router uses it to keep per-shard admission accounting
/// and cost estimates without polling or wrapper threads.
struct CompletionInfo {
  enum class Outcome {
    kOk,               ///< promise fulfilled with a tensor
    kError,            ///< promise failed (model error, exhausted retries)
    kDeadlineExpired,  ///< triaged out before the forward pass
    kBreakerRejected,  ///< failed fast at submit (circuit open)
  };
  ModelKind kind = ModelKind::kCongestion;
  Outcome outcome = Outcome::kOk;
  int tag = 0;                       ///< the caller's submit() tag, echoed
  double latency_ms = 0.0;           ///< submit → promise resolution
  /// Forward wall time divided by the batch's live item count; 0 when
  /// the request never reached a forward pass. Feeds the router's
  /// per-item cost EWMA (serve/admission.hpp).
  double exec_ms_per_item = 0.0;
};

/// Invoked once per request, after its promise has resolved, from the
/// worker (or submitting) thread, with no service lock held. Must be
/// thread-safe and cheap; it sits on the completion path of every
/// request.
using CompletionHook = std::function<void(const CompletionInfo&)>;

struct ServiceConfig {
  int num_threads = 4;              ///< worker pool size
  std::size_t queue_capacity = 256; ///< bounded batch queue (backpressure)
  BatcherConfig batcher;
  std::size_t latency_reservoir = 1 << 14;  ///< retained latency samples

  // Reliability knobs (docs/RELIABILITY.md).
  double deadline_ms = 0.0;        ///< per-request deadline; 0 = none
  int max_retries = 2;             ///< extra attempts per batch on TransientError
  double retry_backoff_ms = 0.5;   ///< first backoff; doubles per attempt
  double retry_backoff_max_ms = 20.0;  ///< backoff growth cap
  std::uint64_t retry_jitter_seed = 0x1ac0;  ///< deterministic backoff jitter
  BreakerConfig breaker;           ///< per-(model set, kind) circuit breaker
  CompletionHook on_complete;      ///< per-request completion callback (may be null)

  /// Smallest accepted linger: the flusher wakes every max_linger_ms/2,
  /// so a zero linger would degenerate into a busy loop.
  static constexpr double kMinLingerMs = 0.05;

  /// LACO_CHECKs hard invariants (non-negative durations and counts are
  /// caller bugs, not runtime conditions) and clamps soft knobs (pool
  /// size, batch size, linger) to safe minimums. The service ctor
  /// stores the validated copy.
  ServiceConfig validated() const;
};

struct ServiceCounters {
  std::uint64_t requests = 0;       ///< submitted
  std::uint64_t completed = 0;      ///< promises fulfilled (incl. errors)
  std::uint64_t batches = 0;        ///< forward passes executed
  std::uint64_t batched_items = 0;  ///< requests that went through batches
  std::size_t pending = 0;          ///< waiting in the batcher right now
  std::size_t in_flight = 0;        ///< submitted but not completed
  std::size_t max_in_flight = 0;
  std::size_t pool_queue_depth = 0;
  std::size_t pool_max_queue_depth = 0;

  // Fault-tolerance counters.
  std::uint64_t retried_batches = 0;   ///< batch re-executions after a transient failure
  std::uint64_t failed_batches = 0;    ///< batches whose live items received an error
  std::uint64_t deadline_expired = 0;  ///< requests failed with DeadlineExceededError
  std::uint64_t breaker_rejected = 0;  ///< requests failed fast with CircuitOpenError
  std::uint64_t breaker_opens = 0;     ///< breaker transitions into the open state
  std::size_t breakers_open = 0;       ///< breakers currently open or half-open

  double mean_batch_size() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_items) / static_cast<double>(batches);
  }
};

/// Registry-backed mirrors of ServiceCounters plus latency / batch-size
/// histograms, published under the "serve." prefix so CLI stats dumps
/// and tests observe live service telemetry without touching the
/// service's lock (docs/OBSERVABILITY.md). References are stable for
/// the registry's lifetime; counters/gauges are lock-free.
struct ServiceMetrics {
  explicit ServiceMetrics(obs::MetricRegistry& registry);

  obs::Counter& requests;
  obs::Counter& completed;
  obs::Counter& batches;
  obs::Counter& batched_items;
  obs::Counter& retried_batches;
  obs::Counter& failed_batches;
  obs::Counter& deadline_expired;
  obs::Counter& breaker_rejected;
  obs::Counter& breaker_opens;
  obs::Gauge& in_flight;
  obs::Gauge& max_in_flight;
  obs::Histogram& latency_ms;   ///< submit → result, per request
  obs::Histogram& batch_size;   ///< items per executed forward pass
};

class InferenceService {
 public:
  explicit InferenceService(ServiceConfig config = {});
  /// Drains outstanding work, then stops the flusher and the pool.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Enqueues one inference request. `input` must be [1, C, H, W] with
  /// the channel count the target network expects; the tensor is taken
  /// by value and must not be mutated by the caller afterwards. The
  /// future yields the [1, C_out, H, W] output or a typed error
  /// (serve/errors.hpp) — it always resolves, even under faults.
  /// `tag` is an opaque caller value echoed in CompletionInfo.
  std::future<nn::Tensor> submit(std::shared_ptr<const LacoModels> models, ModelKind kind,
                                 nn::Tensor input,  // analyze-ok(tensor-by-value): sink, moved into the batch
                                 int tag = 0)
      LACO_EXCLUDES(mutex_);

  /// Blocks until every submitted request has completed.
  void drain() LACO_EXCLUDES(mutex_);

  ServiceCounters counters() const LACO_EXCLUDES(mutex_);

  /// Breaker state for one (model set, kind); kClosed when no request
  /// for that pair has ever failed (no breaker allocated yet).
  BreakerState breaker_state(const std::shared_ptr<const LacoModels>& models,
                             ModelKind kind) const LACO_EXCLUDES(mutex_);

  /// Latency (ms, submit → result) of up to `latency_reservoir` recent
  /// requests, unordered. Use `percentile` for p50/p99.
  std::vector<double> latency_snapshot_ms() const LACO_EXCLUDES(mutex_);

  const ServiceConfig& config() const { return config_; }

 private:
  /// Breakers key on the same identity the batcher buckets on: the
  /// model-set address (stable via shared_ptr) plus the network kind.
  using BreakerKey = std::pair<const void*, int>;
  static BreakerKey breaker_key(const LacoModels* models, ModelKind kind) {
    return {models, static_cast<int>(kind)};
  }

  /// Counts the batch and hands it to the pool. Callers must NOT hold
  /// mutex_: the pool's bounded queue blocks, and workers take mutex_.
  void enqueue(Batch batch) LACO_EXCLUDES(mutex_);
  void execute(Batch batch) LACO_EXCLUDES(mutex_);
  void flusher_loop() LACO_EXCLUDES(mutex_);
  /// Exponential backoff with deterministic jitter for retry `attempt`.
  std::chrono::duration<double, std::milli> backoff_delay(int attempt);

  ServiceConfig config_;
  /// Lock-free registry mirrors updated alongside counters_ at every
  /// site; readable without mutex_ (CLI stats dumps, tests).
  ServiceMetrics metrics_;
  ThreadPool pool_;
  mutable Mutex mutex_;
  CondVar drained_;
  Batcher batcher_ LACO_GUARDED_BY(mutex_);
  ServiceCounters counters_ LACO_GUARDED_BY(mutex_);
  std::map<BreakerKey, CircuitBreaker> breakers_ LACO_GUARDED_BY(mutex_);
  std::vector<double> latencies_ms_ LACO_GUARDED_BY(mutex_);
  std::size_t latency_next_ LACO_GUARDED_BY(mutex_) = 0;  ///< reservoir write cursor
  bool stopping_ LACO_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> jitter_counter_{0};  ///< backoff jitter stream position
  CondVar flusher_wakeup_;
  std::thread flusher_;
};

/// p in [0, 100]; nearest-rank percentile of an unsorted sample set.
double percentile(std::vector<double> values, double p);

}  // namespace laco::serve
