#include "serve/circuit_breaker.hpp"

#include <algorithm>

namespace laco::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  config_.failure_threshold = std::max(1, config_.failure_threshold);
  config_.cooldown_ms = std::max(0.0, config_.cooldown_ms);
}

void CircuitBreaker::open(TimePoint now) {
  state_ = BreakerState::kOpen;
  probe_in_flight_ = false;
  opened_at_ = now;
  ++times_opened_;
}

bool CircuitBreaker::allow(TimePoint now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto cooldown = std::chrono::duration<double, std::milli>(config_.cooldown_ms);
      if (now - opened_at_ < cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;  // this caller is the probe
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::record_failure(TimePoint now) {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to a full cooldown.
    open(now);
  } else if (state_ == BreakerState::kClosed &&
             consecutive_failures_ >= config_.failure_threshold) {
    open(now);
  }
}

}  // namespace laco::serve
