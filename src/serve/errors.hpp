// Typed request-failure errors for the inference service. Every future
// the service hands out resolves with either a tensor or one of these
// (or the underlying model error) — never hangs. Clients switch on the
// type to decide between retrying elsewhere, degrading to an analytic
// path, or surfacing the failure.
#pragma once

#include <stdexcept>
#include <string>

#include "util/errors.hpp"

namespace laco::serve {

/// The request's deadline passed before a forward pass produced its
/// result; the input was never (or no longer) worth computing.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what) : std::runtime_error(what) {}
};

/// The circuit breaker for the target (model set, kind) is open: recent
/// batches failed consecutively and the service is failing fast instead
/// of queuing more work onto a broken model. Transient by design —
/// the breaker half-opens after its cooldown and probes recovery.
class CircuitOpenError : public TransientError {
 public:
  explicit CircuitOpenError(const std::string& what) : TransientError(what) {}
};

/// The shard router refused the request at admission: every candidate
/// shard's bounded queue is at its (priority-class) capacity. NOT a
/// TransientError on purpose — an overloaded fleet must not absorb an
/// immediate retry storm on top of the overload. Clients degrade
/// instead (e.g. CongestionPenalty's analytic RUDY fallback) or retry
/// after their own backoff.
class ShedError : public std::runtime_error {
 public:
  explicit ShedError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace laco::serve
