#!/bin/bash
# Regenerates every experiment: one bench binary per paper table/figure.
# Ordered paper-critical-first. Writes bench_output.txt and CSVs.
cd "$(dirname "$0")"
ORDER="bench_table1_comparison bench_fig6_scheme_ablation bench_fig7_flow_ablation \
bench_fig1_distribution_shift bench_fig3_cellflow bench_fig8_runtime \
bench_quasivox_ablation bench_lookahead_horizon bench_history_frames \
bench_eta_sweep bench_inflation_baseline bench_wirelength_models \
bench_serve_throughput bench_kernels"
{
  for name in $ORDER; do
    echo
    echo "########## $name ##########"
    echo
    "build/bench/$name"
  done
} > bench_output.txt 2>&1
echo "machine-readable reports (laco-bench schema, docs/OBSERVABILITY.md):"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none written)"
echo DONE > /tmp/bench_sweep_done
