#!/bin/bash
# Regenerates every experiment: one bench binary per paper table/figure.
# Ordered paper-critical-first. Every binary runs from build/, so all
# artifacts (bench_output.txt, BENCH_*.json, CSVs) land in build/ and
# never dirty the repo root.
#
#   --check-baseline   After the run, diff every fresh build/BENCH_*.json
#                      against its committed twin under bench/baselines/
#                      with laco-bench-check (warn-only drift report;
#                      see docs/OBSERVABILITY.md).
cd "$(dirname "$0")"
CHECK_BASELINE=0
for arg in "$@"; do
  case "$arg" in
    --check-baseline) CHECK_BASELINE=1 ;;
    *) echo "run_benches.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done
ORDER="bench_table1_comparison bench_fig6_scheme_ablation bench_fig7_flow_ablation \
bench_fig1_distribution_shift bench_fig3_cellflow bench_fig8_runtime \
bench_quasivox_ablation bench_lookahead_horizon bench_history_frames \
bench_eta_sweep bench_inflation_baseline bench_wirelength_models \
bench_serve_throughput bench_serve_scale bench_kernels bench_nn_ops"
cd build || { echo "run_benches.sh: no build/ directory (configure first)" >&2; exit 2; }
{
  for name in $ORDER; do
    echo
    echo "########## $name ##########"
    echo
    "bench/$name"
  done
} > bench_output.txt 2>&1
echo "machine-readable reports (laco-bench schema, docs/OBSERVABILITY.md):"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none written)"
if [ "$CHECK_BASELINE" = 1 ]; then
  echo
  echo "baseline drift (bench/baselines/, warn-only):"
  for report in BENCH_*.json; do
    [ -e "$report" ] || continue
    baseline="../bench/baselines/$report"
    if [ -e "$baseline" ]; then
      tools/laco-bench-check "$report" "$baseline"
    else
      echo "  $report: no baseline committed (add one under bench/baselines/)"
    fi
  done
fi
echo DONE > /tmp/bench_sweep_done
