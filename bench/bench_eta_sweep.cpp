// Extension ablation (paper Eq. 8 discussion): the η trade-off between
// wirelength and congestion. Sweeps the penalty weight and reports WCS
// and routed wirelength — the knob a user turns when adopting LACO.
#include "bench_common.hpp"
#include "laco/laco_placer.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Extension: congestion-penalty weight (eta) sweep", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& traces = pipeline.traces_for({"fft_1", "fft_2", "des_perf_1", "des_perf_b"});
  const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, traces);

  const std::string target = "edit_dist_a";
  Table table({"eta", "WCS_H", "WCS_V", "routed WL", "HPWL"});
  for (const double eta : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    Design design = make_ispd2015_analog(target, s.scale);
    LacoPlacerConfig cfg;
    cfg.scheme = eta == 0.0 ? LacoScheme::kDreamPlace : LacoScheme::kCellFlowKL;
    cfg.placer = pipeline.config().trace.placer;
    cfg.penalty = pipeline.penalty_config();
    cfg.penalty.eta = eta;
    cfg.router = pipeline.config().trace.router;
    const LacoRunResult result =
        run_laco_placement(design, cfg, eta == 0.0 ? nullptr : &models);
    table.add_row({Table::fmt(eta, 2), Table::fmt(result.evaluation.wcs_h, 3),
                   Table::fmt(result.evaluation.wcs_v, 3),
                   Table::fmt(result.evaluation.routed_wirelength, 1),
                   Table::fmt(result.evaluation.hpwl, 1)});
    std::cout << "  eta=" << eta << " done\n";
  }
  std::cout << '\n' << table.to_string();
  table.write_csv("eta_sweep.csv");
  std::cout << "\nexpected shape: rising eta trades wirelength for lower worst congestion, "
               "with diminishing returns and eventual WL degradation.\n";
  return 0;
}
