// Google-benchmark microbenchmarks of the compute kernels the LACO flow
// spends its time in: feature extraction, the spectral Poisson solve,
// conv2d forward/backward, cell-flow quasi-voxelization, and one routed
// evaluation. Useful when tuning resolutions (DESIGN.md Sec. 6).
#include <benchmark/benchmark.h>

#include "features/feature_stack.hpp"
#include "features/macro_region.hpp"
#include "features/pin_rudy.hpp"
#include "features/rudy.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "nn/autograd.hpp"
#include "nn/ops.hpp"
#include "placer/poisson.hpp"
#include "router/global_router.hpp"

namespace {

using namespace laco;

const Design& bench_design() {
  static const Design design = make_ispd2015_analog("des_perf_1", 0.004);
  return design;
}

void BM_Rudy(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_rudy(bench_design(), grid, grid));
  }
}
BENCHMARK(BM_Rudy)->Arg(32)->Arg(64)->Arg(128);

void BM_PinRudy(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_pin_rudy(bench_design(), grid, grid));
  }
}
BENCHMARK(BM_PinRudy)->Arg(64);

void BM_CellFlow(benchmark::State& state) {
  const Design& d = bench_design();
  std::vector<double> px, py;
  d.get_movable_positions(px, py);
  for (double& v : px) v += 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_cell_flow(d, px, py, 64, 64, QuasiVoxScheme::kWeightedSum));
  }
}
BENCHMARK(BM_CellFlow);

void BM_PoissonSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(n) * n, 0.0);
  for (std::size_t i = 0; i < rho.size(); i += 7) rho[i] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(rho));
  }
}
BENCHMARK(BM_PoissonSolve)->Arg(32)->Arg(64);

void BM_Conv2dForward(benchmark::State& state) {
  nn::Tensor x = nn::Tensor::zeros({1, 8, 64, 64});
  nn::Tensor w = nn::Tensor::zeros({8, 8, 3, 3});
  nn::fill_uniform(x, -1, 1, 1);
  nn::fill_uniform(w, -1, 1, 2);
  nn::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::conv2d(x, w, nn::Tensor(), 1, 1));
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  nn::Tensor x = nn::Tensor::zeros({1, 8, 32, 32});
  nn::Tensor w = nn::Tensor::zeros({8, 8, 3, 3}, false);
  nn::fill_uniform(x, -1, 1, 1);
  nn::fill_uniform(w, -1, 1, 2);
  w.set_requires_grad(true);
  for (auto _ : state) {
    x.zero_grad();
    w.zero_grad();
    nn::Tensor loss = nn::mean_square(nn::conv2d(x, w, nn::Tensor(), 1, 1));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_GlobalRoute(benchmark::State& state) {
  const Design& d = bench_design();
  GlobalRouterConfig cfg;
  cfg.grid.nx = 32;
  cfg.grid.ny = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_design(d, cfg));
  }
}
BENCHMARK(BM_GlobalRoute);

}  // namespace

BENCHMARK_MAIN();
