// Extension ablation (DESIGN.md): sweep of the history length C — the
// number of past frames the look-ahead model consumes (paper: C=4).
#include "bench_common.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Extension: history length (C) sweep", s);

  const std::vector<std::string> train_designs{"fft_1", "fft_2", "des_perf_1", "des_perf_b"};
  const std::vector<std::string> test_designs{"pci_bridge32_b", "matrix_mult_1"};

  Table summary({"C (frames)", "train samples", "avg NRMS", "avg SSIM"});
  for (const int frames : {2, 3, 4, 6}) {
    PipelineConfig cfg = bench::bench_pipeline_config(s);
    cfg.lookahead_model.frames = frames;
    Pipeline pipeline(cfg);
    {
      const char* cache = std::getenv("LACO_TRACE_CACHE");
      pipeline.set_trace_cache_dir(cache != nullptr ? cache : "laco_trace_cache");
    }
    const auto& train_traces = pipeline.traces_for(train_designs);
    const auto& test_traces = pipeline.traces_for(test_designs);
    if (train_traces.empty() ||
        train_traces[0].snapshots.size() < static_cast<std::size_t>(frames) + 1) {
      std::cout << "  C=" << frames << ": not enough snapshots per run, skipped\n";
      continue;
    }
    const auto samples = build_lookahead_samples(train_traces, frames);
    const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);
    const PredictionQuality q = pipeline.evaluate_prediction(models, test_traces);
    summary.add_row({std::to_string(frames), std::to_string(samples.size()),
                     Table::fmt(q.nrms, 4), Table::fmt(q.ssim, 4)});
    std::cout << "  C=" << frames << ": NRMS=" << Table::fmt(q.nrms, 4) << '\n';
  }
  std::cout << '\n' << summary.to_string();
  summary.write_csv("history_frames.csv");
  std::cout << "\n(paper uses C=4; longer histories add runtime and training burden for "
               "diminishing returns.)\n";
  return 0;
}
