// Throughput / latency benchmark for the batched inference service
// (src/serve): requests/s and p50/p99 latency swept over worker-thread
// count and max batch size, against the single-threaded unbatched
// baseline. Also asserts batched outputs match sequential ones exactly.
// Writes serve_throughput.csv.
//
// Knobs: LACO_SERVE_REQUESTS (default 512), LACO_SERVE_GRID (default
// 32), LACO_SERVE_CLIENTS (default 8).
#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "models/congestion_fcn.hpp"
#include "obs/bench_report.hpp"
#include "plan/plan_cache.hpp"
#include "serve/service.hpp"

namespace laco::bench {
namespace {

std::shared_ptr<const LacoModels> demo_models() {
  auto m = std::make_shared<LacoModels>();
  m->scheme = LacoScheme::kDreamCong;
  CongestionFcnConfig fc;
  fc.in_channels = 3;
  nn::reset_init_seed(77);
  m->congestion = std::make_shared<CongestionFcn>(fc);
  for (nn::Tensor p : m->congestion->parameters()) p.set_requires_grad(false);
  return m;
}

struct SweepResult {
  double rps = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean_batch = 0.0;
  double max_err = 0.0;
};

SweepResult run_sweep(const std::shared_ptr<const LacoModels>& models,
                      const std::vector<nn::Tensor>& inputs,
                      const std::vector<nn::Tensor>& expected, int threads, int max_batch,
                      int clients) {
  serve::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.max_linger_ms = 1.0;
  SweepResult r;
  serve::InferenceService service(cfg);
  Timer timer;
  std::vector<nn::Tensor> outputs(inputs.size());
  std::vector<std::thread> submitters;
  for (int c = 0; c < clients; ++c) {
    submitters.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < inputs.size();
           i += static_cast<std::size_t>(clients)) {
        outputs[i] = service.submit(models, serve::ModelKind::kCongestion, inputs[i]).get();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const double seconds = timer.seconds();
  r.rps = static_cast<double>(inputs.size()) / std::max(1e-9, seconds);
  service.drain();  // futures resolve before the service's bookkeeping
  const auto latencies = service.latency_snapshot_ms();
  r.p50 = serve::percentile(latencies, 50.0);
  r.p95 = serve::percentile(latencies, 95.0);
  r.p99 = serve::percentile(latencies, 99.0);
  r.mean_batch = service.counters().mean_batch_size();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    for (std::size_t k = 0; k < outputs[i].data().size(); ++k) {
      r.max_err = std::max(r.max_err, static_cast<double>(std::abs(
                                          outputs[i].data()[k] - expected[i].data()[k])));
    }
  }
  return r;
}

}  // namespace
}  // namespace laco::bench

int main() {
  using namespace laco;
  using namespace laco::bench;
  set_log_level(LogLevel::kWarn);

  const int requests = env_int("LACO_SERVE_REQUESTS", 512);
  const int grid = env_int("LACO_SERVE_GRID", 32);
  const int clients = env_int("LACO_SERVE_CLIENTS", 8);
  std::cout << "==== serve throughput: batched concurrent inference ====\n"
            << "settings: requests=" << requests << " grid=" << grid
            << " clients=" << clients
            << " hw_threads=" << std::thread::hardware_concurrency() << "\n\n";

  const auto models = demo_models();
  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  for (int i = 0; i < requests; ++i) {
    nn::Tensor t = nn::Tensor::zeros({1, 3, grid, grid});
    for (float& v : t.data()) v = uniform(rng);
    inputs.push_back(std::move(t));
  }

  // Single-threaded unbatched baseline (also the reference outputs).
  std::vector<nn::Tensor> expected;
  expected.reserve(inputs.size());
  Timer timer;
  {
    nn::NoGradGuard guard;
    for (const nn::Tensor& in : inputs) expected.push_back(models->congestion->forward(in));
  }
  const double baseline_rps = requests / std::max(1e-9, timer.seconds());
  std::cout << "baseline (1 thread, batch 1, no service): " << Table::fmt(baseline_rps, 1)
            << " req/s\n\n";

  obs::BenchReporter report("serve");
  report.set_setting("requests", requests);
  report.set_setting("grid", grid);
  report.set_setting("clients", clients);
  report.set_setting("hw_threads",
                     static_cast<int>(std::thread::hardware_concurrency()));
  report.set_metric("baseline_rps", baseline_rps);

  Table table({"threads", "max_batch", "req_per_s", "speedup", "p50_ms", "p99_ms",
               "mean_batch", "max_abs_err"});
  bool exact = true;
  double best_rps = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int max_batch : {1, 4, 8}) {
      const SweepResult r = run_sweep(models, inputs, expected, threads, max_batch, clients);
      exact = exact && r.max_err == 0.0;
      best_rps = std::max(best_rps, r.rps);
      table.add_row({std::to_string(threads), std::to_string(max_batch), Table::fmt(r.rps, 1),
                     Table::fmt(r.rps / baseline_rps, 2), Table::fmt(r.p50, 2),
                     Table::fmt(r.p99, 2), Table::fmt(r.mean_batch, 2),
                     Table::fmt(r.max_err, 9)});
      obs::Json row = obs::Json::object();
      row["threads"] = threads;
      row["max_batch"] = max_batch;
      row["req_per_s"] = r.rps;
      row["speedup"] = r.rps / baseline_rps;
      row["p50_ms"] = r.p50;
      row["p99_ms"] = r.p99;
      row["mean_batch"] = r.mean_batch;
      row["max_abs_err"] = r.max_err;
      report.add_row("sweep", std::move(row));
    }
  }
  std::cout << table.to_string() << '\n'
            << (exact ? "batched outputs are bitwise-identical to sequential ones\n"
                      : "WARNING: batched outputs deviate from sequential ones\n");
  table.write_csv("serve_throughput.csv");
  report.set_metric("best_rps", best_rps);
  report.set_metric("best_speedup", best_rps / baseline_rps);
  report.set_metric("exact_outputs", exact ? 1.0 : 0.0);

  // Compiled-plan A/B (docs/PLAN.md): same service config with the plan
  // path off (eager forwards) and on. Each mode gets a warm-up pass so
  // the plan compile and service spin-up are off the clock; the alloc
  // count is the nn.tensor.allocs delta over the measured pass.
  std::cout << "\n==== compiled plans: plan-off vs plan-on (threads=4, max_batch=8) ====\n";
  Table ptable({"plans", "req_per_s", "p50_ms", "p95_ms", "allocs_per_req", "max_abs_err"});
  double plan_rps[2] = {0.0, 0.0};
  bool plan_exact = true;
  for (const bool enabled : {false, true}) {
    plan::set_plans_enabled(enabled);
    (void)run_sweep(models, inputs, expected, 4, 8, clients);  // warm-up
    const std::uint64_t allocs_before = nn::tensor_alloc_count();
    const SweepResult r = run_sweep(models, inputs, expected, 4, 8, clients);
    const double allocs_per_req =
        static_cast<double>(nn::tensor_alloc_count() - allocs_before) / requests;
    plan_rps[enabled ? 1 : 0] = r.rps;
    plan_exact = plan_exact && r.max_err == 0.0;
    const std::string tag = enabled ? "plan_on" : "plan_off";
    ptable.add_row({enabled ? "on" : "off", Table::fmt(r.rps, 1), Table::fmt(r.p50, 2),
                    Table::fmt(r.p95, 2), Table::fmt(allocs_per_req, 2),
                    Table::fmt(r.max_err, 9)});
    report.set_metric(tag + "_rps", r.rps);
    report.set_metric(tag + "_p50_ms", r.p50);
    report.set_metric(tag + "_p95_ms", r.p95);
    report.set_metric(tag + "_allocs_per_req", allocs_per_req);
  }
  plan::set_plans_enabled(true);
  exact = exact && plan_exact;
  std::cout << ptable.to_string()
            << (plan_exact ? "plan outputs are bitwise-identical to eager ones\n"
                           : "WARNING: plan outputs deviate from eager ones\n");
  report.set_metric("plan_speedup", plan_rps[1] / std::max(1e-9, plan_rps[0]));
  report.set_metric("plan_exact_outputs", plan_exact ? 1.0 : 0.0);

  // Direct forward A/B: one thread, no service queueing — isolates the
  // executor against the eager graph walk. Allocs/forward on the plan
  // path is exactly 1 (the output tensor); eager allocates one tensor
  // per op.
  {
    const int direct_iters = std::max(32, requests / 4);
    nn::Tensor batch = nn::Tensor::zeros({8, 3, grid, grid});
    for (float& v : batch.data()) v = uniform(rng);
    const auto measure = [&](const std::function<void()>& fwd) {
      fwd();  // warm-up (plan compile / cache warm)
      std::vector<double> lat;
      lat.reserve(static_cast<std::size_t>(direct_iters));
      const std::uint64_t allocs_before = nn::tensor_alloc_count();
      for (int i = 0; i < direct_iters; ++i) {
        Timer t;
        fwd();
        lat.push_back(t.seconds() * 1e3);
      }
      const double allocs =
          static_cast<double>(nn::tensor_alloc_count() - allocs_before) / direct_iters;
      return std::tuple<double, double, double>(serve::percentile(lat, 50.0),
                                                serve::percentile(lat, 95.0), allocs);
    };
    nn::NoGradGuard guard;
    const auto [eager_p50, eager_p95, eager_allocs] =
        measure([&] { (void)models->congestion->forward(batch); });
    plan::CompileResult compiled = plan::compile(
        [&](const std::vector<nn::Tensor>& in) { return models->congestion->forward(in[0]); },
        {batch});
    plan::Workspace ws;
    const auto [plan_p50, plan_p95, plan_allocs] = compiled.plan
        ? measure([&] { (void)compiled.plan->run({batch}, ws); })
        : std::tuple<double, double, double>(0.0, 0.0, 0.0);
    Table dtable({"path", "fwd_p50_ms", "fwd_p95_ms", "allocs_per_fwd"});
    dtable.add_row({"eager", Table::fmt(eager_p50, 3), Table::fmt(eager_p95, 3),
                    Table::fmt(eager_allocs, 2)});
    dtable.add_row({"plan", Table::fmt(plan_p50, 3), Table::fmt(plan_p95, 3),
                    Table::fmt(plan_allocs, 2)});
    std::cout << "\n==== direct forward (1 thread, batch 8, no service) ====\n"
              << dtable.to_string();
    report.set_metric("direct_eager_p50_ms", eager_p50);
    report.set_metric("direct_eager_p95_ms", eager_p95);
    report.set_metric("direct_eager_allocs_per_fwd", eager_allocs);
    report.set_metric("direct_plan_p50_ms", plan_p50);
    report.set_metric("direct_plan_p95_ms", plan_p95);
    report.set_metric("direct_plan_allocs_per_fwd", plan_allocs);
    report.set_metric("direct_plan_speedup", eager_p50 / std::max(1e-9, plan_p50));
  }
  if (!report.write()) {
    std::cout << "WARNING: cannot write BENCH_serve.json\n";
    return 1;
  }
  std::cout << "wrote serve_throughput.csv and BENCH_serve.json\n";
  return exact ? 0 : 1;
}
