// Throughput / latency benchmark for the batched inference service
// (src/serve): requests/s and p50/p99 latency swept over worker-thread
// count and max batch size, against the single-threaded unbatched
// baseline. Also asserts batched outputs match sequential ones exactly.
// Writes serve_throughput.csv.
//
// Knobs: LACO_SERVE_REQUESTS (default 512), LACO_SERVE_GRID (default
// 32), LACO_SERVE_CLIENTS (default 8).
#include <cmath>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "models/congestion_fcn.hpp"
#include "obs/bench_report.hpp"
#include "serve/service.hpp"

namespace laco::bench {
namespace {

std::shared_ptr<const LacoModels> demo_models() {
  auto m = std::make_shared<LacoModels>();
  m->scheme = LacoScheme::kDreamCong;
  CongestionFcnConfig fc;
  fc.in_channels = 3;
  nn::reset_init_seed(77);
  m->congestion = std::make_shared<CongestionFcn>(fc);
  for (nn::Tensor p : m->congestion->parameters()) p.set_requires_grad(false);
  return m;
}

struct SweepResult {
  double rps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double mean_batch = 0.0;
  double max_err = 0.0;
};

SweepResult run_sweep(const std::shared_ptr<const LacoModels>& models,
                      const std::vector<nn::Tensor>& inputs,
                      const std::vector<nn::Tensor>& expected, int threads, int max_batch,
                      int clients) {
  serve::ServiceConfig cfg;
  cfg.num_threads = threads;
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.max_linger_ms = 1.0;
  SweepResult r;
  serve::InferenceService service(cfg);
  Timer timer;
  std::vector<nn::Tensor> outputs(inputs.size());
  std::vector<std::thread> submitters;
  for (int c = 0; c < clients; ++c) {
    submitters.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < inputs.size();
           i += static_cast<std::size_t>(clients)) {
        outputs[i] = service.submit(models, serve::ModelKind::kCongestion, inputs[i]).get();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const double seconds = timer.seconds();
  r.rps = static_cast<double>(inputs.size()) / std::max(1e-9, seconds);
  service.drain();  // futures resolve before the service's bookkeeping
  const auto latencies = service.latency_snapshot_ms();
  r.p50 = serve::percentile(latencies, 50.0);
  r.p99 = serve::percentile(latencies, 99.0);
  r.mean_batch = service.counters().mean_batch_size();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    for (std::size_t k = 0; k < outputs[i].data().size(); ++k) {
      r.max_err = std::max(r.max_err, static_cast<double>(std::abs(
                                          outputs[i].data()[k] - expected[i].data()[k])));
    }
  }
  return r;
}

}  // namespace
}  // namespace laco::bench

int main() {
  using namespace laco;
  using namespace laco::bench;
  set_log_level(LogLevel::kWarn);

  const int requests = env_int("LACO_SERVE_REQUESTS", 512);
  const int grid = env_int("LACO_SERVE_GRID", 32);
  const int clients = env_int("LACO_SERVE_CLIENTS", 8);
  std::cout << "==== serve throughput: batched concurrent inference ====\n"
            << "settings: requests=" << requests << " grid=" << grid
            << " clients=" << clients
            << " hw_threads=" << std::thread::hardware_concurrency() << "\n\n";

  const auto models = demo_models();
  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  for (int i = 0; i < requests; ++i) {
    nn::Tensor t = nn::Tensor::zeros({1, 3, grid, grid});
    for (float& v : t.data()) v = uniform(rng);
    inputs.push_back(std::move(t));
  }

  // Single-threaded unbatched baseline (also the reference outputs).
  std::vector<nn::Tensor> expected;
  expected.reserve(inputs.size());
  Timer timer;
  {
    nn::NoGradGuard guard;
    for (const nn::Tensor& in : inputs) expected.push_back(models->congestion->forward(in));
  }
  const double baseline_rps = requests / std::max(1e-9, timer.seconds());
  std::cout << "baseline (1 thread, batch 1, no service): " << Table::fmt(baseline_rps, 1)
            << " req/s\n\n";

  obs::BenchReporter report("serve");
  report.set_setting("requests", requests);
  report.set_setting("grid", grid);
  report.set_setting("clients", clients);
  report.set_setting("hw_threads",
                     static_cast<int>(std::thread::hardware_concurrency()));
  report.set_metric("baseline_rps", baseline_rps);

  Table table({"threads", "max_batch", "req_per_s", "speedup", "p50_ms", "p99_ms",
               "mean_batch", "max_abs_err"});
  bool exact = true;
  double best_rps = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int max_batch : {1, 4, 8}) {
      const SweepResult r = run_sweep(models, inputs, expected, threads, max_batch, clients);
      exact = exact && r.max_err == 0.0;
      best_rps = std::max(best_rps, r.rps);
      table.add_row({std::to_string(threads), std::to_string(max_batch), Table::fmt(r.rps, 1),
                     Table::fmt(r.rps / baseline_rps, 2), Table::fmt(r.p50, 2),
                     Table::fmt(r.p99, 2), Table::fmt(r.mean_batch, 2),
                     Table::fmt(r.max_err, 9)});
      obs::Json row = obs::Json::object();
      row["threads"] = threads;
      row["max_batch"] = max_batch;
      row["req_per_s"] = r.rps;
      row["speedup"] = r.rps / baseline_rps;
      row["p50_ms"] = r.p50;
      row["p99_ms"] = r.p99;
      row["mean_batch"] = r.mean_batch;
      row["max_abs_err"] = r.max_err;
      report.add_row("sweep", std::move(row));
    }
  }
  std::cout << table.to_string() << '\n'
            << (exact ? "batched outputs are bitwise-identical to sequential ones\n"
                      : "WARNING: batched outputs deviate from sequential ones\n");
  table.write_csv("serve_throughput.csv");
  report.set_metric("best_rps", best_rps);
  report.set_metric("best_speedup", best_rps / baseline_rps);
  report.set_metric("exact_outputs", exact ? 1.0 : 0.0);
  if (!report.write()) {
    std::cout << "WARNING: cannot write BENCH_serve.json\n";
    return 1;
  }
  std::cout << "wrote serve_throughput.csv and BENCH_serve.json\n";
  return exact ? 0 : 1;
}
