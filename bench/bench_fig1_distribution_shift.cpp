// Reproduces Fig. 1: the distribution-shift phenomenon. Runs a plain
// DREAMPlace-mode global placement on the des_perf_1 analog, snapshots
// the RUDY / PinRUDY / cell-location distributions every few iterations,
// and prints KL(p_i ‖ p_final) — the paper's Fig. 1(c) curve — plus the
// cell-spread statistics behind Fig. 1(a)/(b).
#include "bench_common.hpp"
#include "features/feature_stack.hpp"
#include "metrics/kl_divergence.hpp"
#include "placer/global_placer.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 1: distribution shift across placement iterations", s);

  // This bench runs one plain placement, so it affords a larger design;
  // dense histograms keep the KL estimate out of the sparse-bin noise.
  Design design = make_ispd2015_analog("des_perf_1", s.scale * 5.0);
  std::cout << "design des_perf_1 analog: " << design.num_movable() << " movable cells, "
            << design.num_nets() << " nets\n\n";

  const int grid = 16;
  FeatureExtractor extractor(FeatureConfig{grid, grid, QuasiVoxScheme::kWeightedSum, false});

  struct Sample {
    int iteration;
    GridMap rudy, pin_rudy, cells;
    double spread;  // stddev of cell positions / core width
  };
  std::vector<Sample> samples;

  GlobalPlacerOptions opts;
  opts.bin_nx = 32;
  opts.bin_ny = 32;
  opts.max_iterations = s.max_iterations;
  opts.min_iterations = std::min(80, s.max_iterations);
  GlobalPlacer placer(design, opts);
  const int stride = std::max(1, s.max_iterations / 24);
  placer.set_observer([&](const Design& d, const IterationStats& stats) {
    if (stats.iteration % stride != 0) return;
    FeatureFrame frame = extractor.compute(d);
    double mx = 0, my = 0, vx = 0, vy = 0;
    for (const CellId cid : d.movable_cells()) {
      const Point p = d.cell(cid).center();
      mx += p.x;
      my += p.y;
    }
    mx /= static_cast<double>(d.num_movable());
    my /= static_cast<double>(d.num_movable());
    for (const CellId cid : d.movable_cells()) {
      const Point p = d.cell(cid).center();
      vx += (p.x - mx) * (p.x - mx);
      vy += (p.y - my) * (p.y - my);
    }
    const double spread =
        std::sqrt((vx + vy) / (2.0 * static_cast<double>(d.num_movable()))) / d.core().width();
    samples.push_back({stats.iteration, std::move(frame.rudy), std::move(frame.pin_rudy),
                       cell_location_histogram(d, grid, grid), spread});
  });
  const PlacementResult result = placer.run();
  std::cout << "placement finished: " << result.iterations
            << " iterations, final overflow " << result.final_overflow << "\n\n";

  const Sample& last = samples.back();
  Table table({"iteration", "KL(RUDY)", "KL(PinRUDY)", "KL(cells)", "cell spread"});
  for (const Sample& sample : samples) {
    table.add_row({std::to_string(sample.iteration),
                   Table::fmt(kl_divergence(sample.rudy, last.rudy), 4),
                   Table::fmt(kl_divergence(sample.pin_rudy, last.pin_rudy), 4),
                   Table::fmt(kl_divergence(sample.cells, last.cells), 4),
                   Table::fmt(sample.spread, 4)});
  }
  std::cout << table.to_string();
  table.write_csv("fig1_distribution_shift.csv");

  // Paper claim: distributions at early iterations differ strongly from
  // the final one and the KL decays toward ~0 (Fig. 1(c)).
  const double first_kl = kl_divergence(samples.front().cells, last.cells);
  std::cout << "\nshape check: KL(cells) first=" << Table::fmt(first_kl, 3)
            << " -> 0 by construction at the last sample; monotone-decay expected as in "
               "Fig. 1(c). Early cells concentrated (spread "
            << Table::fmt(samples.front().spread, 3) << ") vs final (spread "
            << Table::fmt(last.spread, 3) << ").\n";
  return 0;
}
