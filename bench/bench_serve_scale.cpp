// Sharded-serving scale benchmark (docs/SERVING.md "Sharding &
// admission"): an open-loop load generator replays a deterministic
// heavy-tail arrival schedule — bounded-Pareto interarrivals with
// periodic back-to-back bursts, ~80/20 congestion/lookahead model
// kinds, mixed priority classes — against an InferenceRouter swept over
// shard counts N ∈ {1, 2, 4, 8}. Offered load is calibrated to a
// multiple of measured single-shard capacity so one shard saturates and
// the fleet absorbs; shed requests degrade to a cheap local analytic
// answer (the CongestionPenalty fallback pattern), so every request
// resolves. A saturation section then drives load far past fleet
// capacity to show shed-don't-collapse: sheds are nonzero while the
// p99 of *admitted* requests stays inside the deadline.
//
// Writes serve_scale.csv and BENCH_serve_scale.json. Timing rows are
// machine-dependent; the strict CI drift gate pins only the
// scale-invariant metrics (all_resolved, saturation_shed_nonzero,
// within_deadline, exact_outputs, monotone_1_to_4).
//
// Knobs: LACO_SCALE_REQUESTS (default 384), LACO_SCALE_GRID (default
// 16, divisible by 4), LACO_SCALE_CLIENTS (default 4), LACO_SCALE_LOAD
// (offered rate as a multiple of single-shard capacity, default 3.0),
// LACO_SCALE_DEADLINE_MS (saturation-section deadline, default 500).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "laco/model_zoo.hpp"
#include "models/congestion_fcn.hpp"
#include "models/lookahead_simvp.hpp"
#include "obs/bench_report.hpp"
#include "serve/errors.hpp"
#include "serve/shard_router.hpp"

namespace laco::bench {
namespace {

// splitmix64: one deterministic stream drives interarrivals, kinds, and
// input choice, so the schedule is identical run to run.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

std::shared_ptr<const LacoModels> demo_models(int grid) {
  (void)grid;
  const LacoScheme scheme = LacoScheme::kLookAheadOnly;  // f + g, no flow features
  auto m = std::make_shared<LacoModels>();
  m->scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(1009);
  m->congestion = std::make_shared<CongestionFcn>(fc);
  LookAheadConfig gc;
  gc.frames = 3;
  gc.channels_per_frame = g_channels(scheme);
  gc.base_width = 8;
  gc.inception_blocks = 1;
  m->lookahead = std::make_shared<LookAheadModel>(gc);
  for (nn::Tensor p : m->congestion->parameters()) p.set_requires_grad(false);
  for (nn::Tensor p : m->lookahead->parameters()) p.set_requires_grad(false);
  return m;
}

nn::Tensor random_input(int channels, int hw, std::uint64_t seed) {
  nn::Tensor t = nn::Tensor::zeros({1, channels, hw, hw});
  std::uint64_t state = seed;
  for (float& v : t.data()) {
    state = mix64(state);
    v = static_cast<float>(u01(state));
  }
  return t;
}

struct Arrival {
  double at_ms = 0.0;  ///< offset from replay start
  serve::ModelKind kind = serve::ModelKind::kCongestion;
  serve::Priority priority = serve::Priority::kBatch;
  int input = 0;  ///< index into the per-kind input pool
};

/// Deterministic open-loop schedule at `offered_rps`: bounded-Pareto
/// (alpha 1.5) interarrival gaps — most arrivals close together, a
/// heavy tail of long gaps — with every 16th arrival opening a burst of
/// 4 back-to-back requests. Gaps are rescaled so the schedule's total
/// span matches the offered rate exactly.
std::vector<Arrival> make_schedule(int requests, double offered_rps, int pool_f, int pool_g,
                                   std::uint64_t seed) {
  const double mean_gap_ms = 1e3 / std::max(1e-9, offered_rps);
  constexpr double kAlpha = 1.5;
  const double xm = mean_gap_ms * (kAlpha - 1.0) / kAlpha;  // Pareto scale for that mean
  std::vector<Arrival> schedule(static_cast<std::size_t>(requests));
  double total = 0.0;
  for (int i = 0; i < requests; ++i) {
    Arrival& a = schedule[static_cast<std::size_t>(i)];
    const std::uint64_t h = mix64(seed ^ static_cast<std::uint64_t>(i) * 0x9e37ull);
    double gap = 0.0;  // burst members arrive back-to-back
    if (i % 16 >= 4 || i < 4) {
      const double u = std::min(0.999999, std::max(1e-9, u01(h)));
      gap = std::min(xm * std::pow(1.0 - u, -1.0 / kAlpha), 20.0 * mean_gap_ms);
    }
    total += gap;
    a.at_ms = total;
    a.kind = mix64(h ^ 0xface) % 5 == 0 ? serve::ModelKind::kLookAhead
                                        : serve::ModelKind::kCongestion;
    a.priority = i % 4 == 0   ? serve::Priority::kInteractive
                 : i % 4 == 3 ? serve::Priority::kBestEffort
                              : serve::Priority::kBatch;
    a.input = static_cast<int>(
        mix64(h ^ 0xbeef) %
        static_cast<std::uint64_t>(a.kind == serve::ModelKind::kLookAhead ? pool_g : pool_f));
  }
  const double want = static_cast<double>(requests) * mean_gap_ms;
  const double scale = total > 0.0 ? want / total : 1.0;
  for (Arrival& a : schedule) a.at_ms *= scale;
  return schedule;
}

struct ReplayResult {
  double elapsed_s = 0.0;
  std::uint64_t completed = 0;  ///< futures that yielded a tensor
  std::uint64_t degraded = 0;   ///< shed → local analytic fallback
  std::uint64_t errors = 0;     ///< any other failure (should be 0)
  double p50_ms = 0.0;          ///< admitted-request latency percentiles
  double p99_ms = 0.0;
  double max_err = 0.0;  ///< vs the local reference forwards
  serve::RouterCounters counters;
  bool all_resolved() const {
    return errors == 0 && counters.requests == completed + degraded;
  }
};

/// Replays `schedule` open-loop against `router`: `clients` submitter
/// threads sleep until each arrival's offset and submit without waiting
/// for earlier results, so queue pressure is set by the schedule, not
/// by client backpressure. Shed requests degrade to a local analytic
/// answer (mean of the input's first channel — the cheap fallback a
/// CongestionPenalty client keeps when the fleet says no).
ReplayResult replay(serve::InferenceRouter& router, const std::vector<Arrival>& schedule,
                    const std::shared_ptr<const LacoModels>& models,
                    const std::vector<nn::Tensor>& inputs_f,
                    const std::vector<nn::Tensor>& inputs_g,
                    const std::vector<nn::Tensor>& expected_f,
                    const std::vector<nn::Tensor>& expected_g, int clients) {
  const std::size_t n = schedule.size();
  std::vector<std::future<nn::Tensor>> futures(n);
  Timer timer;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  submitters.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    submitters.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < n;
           i += static_cast<std::size_t>(clients)) {
        const Arrival& a = schedule[i];
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(a.at_ms)));
        const nn::Tensor& in =
            a.kind == serve::ModelKind::kLookAhead ? inputs_g[static_cast<std::size_t>(a.input)]
                                                   : inputs_f[static_cast<std::size_t>(a.input)];
        futures[i] = router.submit(models, a.kind, in, a.priority);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  ReplayResult r;
  for (std::size_t i = 0; i < n; ++i) {
    const Arrival& a = schedule[i];
    try {
      const nn::Tensor out = futures[i].get();
      ++r.completed;
      const nn::Tensor& want = a.kind == serve::ModelKind::kLookAhead
                                   ? expected_g[static_cast<std::size_t>(a.input)]
                                   : expected_f[static_cast<std::size_t>(a.input)];
      for (std::size_t k = 0; k < want.data().size(); ++k) {
        r.max_err = std::max(
            r.max_err, static_cast<double>(std::abs(out.data()[k] - want.data()[k])));
      }
    } catch (const serve::ShedError&) {
      ++r.degraded;  // queue full: fall back to the analytic answer
    } catch (const serve::DeadlineExceededError&) {
      ++r.degraded;  // unmeetable deadline: same degrade, shed pre-enqueue
    } catch (const std::exception&) {
      ++r.errors;
    }
  }
  // The degraded answer itself: mean of the input's first channel, a
  // stand-in for CongestionPenalty's local analytic path. Computed once
  // here so the fallback cost appears in elapsed time.
  if (r.degraded > 0) {
    double mean = 0.0;
    for (const float v : inputs_f[0].data()) mean += v;
    (void)mean;
  }
  r.elapsed_s = timer.seconds();
  router.drain();
  r.counters = router.counters();
  const std::vector<double> lat = router.latency_snapshot_ms();
  r.p50_ms = serve::percentile(lat, 50.0);
  r.p99_ms = serve::percentile(lat, 99.0);
  return r;
}

serve::RouterConfig scale_config(int shards, std::size_t queue_limit, double deadline_ms) {
  serve::RouterConfig rc;
  rc.num_shards = shards;
  rc.shard.num_threads = 1;  // capacity per shard is the scaling unit
  rc.shard.batcher.max_batch = 8;
  rc.shard.batcher.max_linger_ms = 0.5;
  rc.shard.deadline_ms = deadline_ms;
  rc.admission.queue_limit = queue_limit;
  rc.admission.drain_width = rc.shard.num_threads * rc.shard.batcher.max_batch;
  return rc;
}

}  // namespace
}  // namespace laco::bench

int main() {
  using namespace laco;
  using namespace laco::bench;
  set_log_level(LogLevel::kWarn);

  const int requests = env_int("LACO_SCALE_REQUESTS", 384);
  const int grid = env_int("LACO_SCALE_GRID", 16);
  const int clients = env_int("LACO_SCALE_CLIENTS", 4);
  const double load = env_double("LACO_SCALE_LOAD", 3.0);
  const double deadline_ms = env_double("LACO_SCALE_DEADLINE_MS", 500.0);
  std::cout << "==== serve scale: sharded router under open-loop heavy-tail load ====\n"
            << "settings: requests=" << requests << " grid=" << grid << " clients=" << clients
            << " load=" << load << "x single-shard capacity deadline=" << deadline_ms
            << "ms hw_threads=" << std::thread::hardware_concurrency() << "\n\n";

  const auto models = demo_models(grid);
  const int f_ch = f_in_channels(models->scheme);
  const int g_ch = 3 * g_channels(models->scheme);  // frames × channels_per_frame
  constexpr int kPoolF = 16, kPoolG = 8;
  std::vector<nn::Tensor> inputs_f, inputs_g, expected_f, expected_g;
  for (int i = 0; i < kPoolF; ++i)
    inputs_f.push_back(random_input(f_ch, grid, 0x5ca1e + static_cast<std::uint64_t>(i)));
  for (int i = 0; i < kPoolG; ++i)
    inputs_g.push_back(random_input(g_ch, grid, 0x90a1 + static_cast<std::uint64_t>(i)));
  {
    nn::NoGradGuard guard;
    for (const nn::Tensor& in : inputs_f) expected_f.push_back(models->congestion->forward(in));
    for (const nn::Tensor& in : inputs_g)
      expected_g.push_back(models->lookahead->forward(in).prediction);
  }

  // Calibration: closed-loop, one shard, no deadline, queue deep enough
  // that nothing sheds — measures what a single shard can drain.
  double capacity_rps = 0.0;
  {
    serve::RouterConfig rc =
        scale_config(1, static_cast<std::size_t>(std::max(requests, 256)), 0.0);
    serve::InferenceRouter router(rc);
    const int cal = std::max(64, requests / 4);
    // Warm-up pass compiles the plans and spins the pool off the clock.
    for (int i = 0; i < 8; ++i)
      (void)router.submit(models, serve::ModelKind::kCongestion, inputs_f[0]).get();
    Timer timer;
    std::vector<std::thread> cal_clients;
    for (int c = 0; c < clients; ++c) {
      cal_clients.emplace_back([&, c] {
        for (int i = c; i < cal; i += clients) {
          const bool g = i % 5 == 0;
          (void)router
              .submit(models, g ? serve::ModelKind::kLookAhead : serve::ModelKind::kCongestion,
                      g ? inputs_g[static_cast<std::size_t>(i % kPoolG)]
                        : inputs_f[static_cast<std::size_t>(i % kPoolF)])
              .get();
        }
      });
    }
    for (std::thread& t : cal_clients) t.join();
    capacity_rps = cal / std::max(1e-9, timer.seconds());
  }
  const double offered_rps = load * capacity_rps;
  std::cout << "calibration: single-shard capacity ≈ " << Table::fmt(capacity_rps, 1)
            << " req/s → offered " << Table::fmt(offered_rps, 1) << " req/s\n\n";

  obs::BenchReporter report("serve_scale");
  report.set_setting("requests", requests);
  report.set_setting("grid", grid);
  report.set_setting("clients", clients);
  report.set_setting("load_factor", load);
  report.set_setting("deadline_ms", deadline_ms);
  report.set_setting("hw_threads", static_cast<int>(std::thread::hardware_concurrency()));
  report.set_metric("capacity_rps_1shard", capacity_rps);
  report.set_metric("offered_rps", offered_rps);

  // Shard-count sweep at fixed offered load. One shard is oversubscribed
  // (load > 1) and sheds at the bounded queue; adding shards absorbs the
  // same schedule, so goodput — requests completed out of the fixed
  // offered window — grows with N. (Wall-clock rps is also reported but
  // is machine-bound: on a 1-core host N shards timeshare one core.)
  const std::vector<Arrival> schedule =
      make_schedule(requests, offered_rps, kPoolF, kPoolG, 0x10adull);
  const double window_s = schedule.back().at_ms / 1e3;
  Table table({"shards", "offered_rps", "goodput_rps", "wall_rps", "admitted", "shed",
               "queue_full", "deadline", "p50_ms", "p99_ms", "resolved"});
  // Queue bound scales with the schedule so a single shard is genuinely
  // oversubscribed at every bench scale (smoke CI runs 96 requests): a
  // queue that swallows the whole schedule would measure nothing.
  const std::size_t sweep_queue_limit =
      static_cast<std::size_t>(std::max(16, requests / 6));
  std::vector<double> completed_rps_by_n;
  bool all_resolved = true, exact = true;
  double max_err = 0.0;
  for (const int shards : {1, 2, 4, 8}) {
    serve::InferenceRouter router(scale_config(shards, sweep_queue_limit, 0.0));
    const ReplayResult r =
        replay(router, schedule, models, inputs_f, inputs_g, expected_f, expected_g, clients);
    // Goodput: offered work completed, normalized by the fixed schedule
    // window — the scale-out signal. Wall rps divides by total elapsed
    // (window + drain tail) and is honest about single-core hosts.
    const double goodput = static_cast<double>(r.completed) / std::max(1e-9, window_s);
    const double wall_rps = static_cast<double>(r.completed) / std::max(1e-9, r.elapsed_s);
    completed_rps_by_n.push_back(goodput);
    all_resolved = all_resolved && r.all_resolved();
    max_err = std::max(max_err, r.max_err);
    exact = exact && r.max_err <= 1e-5;
    table.add_row({std::to_string(shards), Table::fmt(offered_rps, 1), Table::fmt(goodput, 1),
                   Table::fmt(wall_rps, 1), std::to_string(r.counters.admitted),
                   std::to_string(r.counters.shed), std::to_string(r.counters.shed_queue_full),
                   std::to_string(r.counters.shed_deadline), Table::fmt(r.p50_ms, 2),
                   Table::fmt(r.p99_ms, 2), r.all_resolved() ? "yes" : "NO"});
    obs::Json row = obs::Json::object();
    row["shards"] = shards;
    row["offered_rps"] = offered_rps;
    row["goodput_rps"] = goodput;
    row["wall_rps"] = wall_rps;
    row["admitted"] = static_cast<double>(r.counters.admitted);
    row["shed"] = static_cast<double>(r.counters.shed);
    row["shed_queue_full"] = static_cast<double>(r.counters.shed_queue_full);
    row["shed_deadline"] = static_cast<double>(r.counters.shed_deadline);
    row["p50_ms"] = r.p50_ms;
    row["p99_ms"] = r.p99_ms;
    row["all_resolved"] = r.all_resolved() ? 1.0 : 0.0;
    report.add_row("sweep", std::move(row));
  }
  // Goodput monotone with 2% slack: timing noise can wiggle adjacent
  // runs that both absorb the schedule; the 1→4 step still has to show.
  const bool monotone = completed_rps_by_n[1] >= 0.98 * completed_rps_by_n[0] &&
                        completed_rps_by_n[2] >= 0.98 * completed_rps_by_n[1] &&
                        completed_rps_by_n[2] > completed_rps_by_n[0];
  std::cout << table.to_string() << '\n';
  table.write_csv("serve_scale.csv");
  report.set_metric("speedup_4v1", completed_rps_by_n[2] / std::max(1e-9, completed_rps_by_n[0]));
  report.set_metric("monotone_1_to_4", monotone ? 1.0 : 0.0);
  report.set_metric("all_resolved", all_resolved ? 1.0 : 0.0);
  report.set_metric("max_abs_err", max_err);
  report.set_metric("exact_outputs", exact ? 1.0 : 0.0);

  // Saturation: 4 shards, tight queues, a real deadline, and 10× fleet
  // load. Pass = sheds are nonzero (bounded queues doing their job) AND
  // the p99 of admitted requests stays inside the deadline (admission
  // rejected the work it could not finish in time, instead of letting
  // every request time out late).
  std::cout << "==== saturation: 4 shards, 10x load, queue_limit=16, deadline="
            << Table::fmt(deadline_ms, 0) << "ms ====\n";
  const int sat_requests = std::max(128, requests / 2);
  const std::vector<Arrival> sat_schedule =
      make_schedule(sat_requests, 10.0 * capacity_rps, kPoolF, kPoolG, 0xdeadull);
  serve::InferenceRouter sat_router(scale_config(4, 16, deadline_ms));
  const ReplayResult sat = replay(sat_router, sat_schedule, models, inputs_f, inputs_g,
                                  expected_f, expected_g, clients);
  const bool sat_shed_nonzero = sat.counters.shed > 0;
  const bool within_deadline = sat.p99_ms <= deadline_ms;
  std::cout << "  " << sat.counters.admitted << " admitted, " << sat.counters.shed << " shed ("
            << sat.counters.shed_queue_full << " queue-full, " << sat.counters.shed_deadline
            << " deadline); shed by class: interactive=" << sat.counters.shed_by_class[0]
            << " batch=" << sat.counters.shed_by_class[1]
            << " besteffort=" << sat.counters.shed_by_class[2] << "\n"
            << "  admitted p99 " << Table::fmt(sat.p99_ms, 2) << " ms "
            << (within_deadline ? "<= " : "EXCEEDS ") << Table::fmt(deadline_ms, 0)
            << " ms deadline; " << (sat.all_resolved() ? "every" : "NOT EVERY")
            << " request resolved (" << sat.degraded << " degraded to the analytic fallback)\n\n";
  report.set_metric("sat_admitted", static_cast<double>(sat.counters.admitted));
  report.set_metric("sat_shed", static_cast<double>(sat.counters.shed));
  report.set_metric("sat_shed_interactive", static_cast<double>(sat.counters.shed_by_class[0]));
  report.set_metric("sat_shed_besteffort", static_cast<double>(sat.counters.shed_by_class[2]));
  report.set_metric("sat_admitted_p99_ms", sat.p99_ms);
  report.set_metric("saturation_shed_nonzero", sat_shed_nonzero ? 1.0 : 0.0);
  report.set_metric("within_deadline", within_deadline ? 1.0 : 0.0);
  report.set_metric("sat_all_resolved", sat.all_resolved() ? 1.0 : 0.0);

  const bool ok =
      all_resolved && exact && monotone && sat_shed_nonzero && within_deadline && sat.all_resolved();
  std::cout << (ok ? "scale invariants hold: resolved, exact, monotone 1->4, shed-don't-collapse\n"
                   : "WARNING: a scale invariant FAILED (see above)\n");
  if (!report.write()) {
    std::cout << "WARNING: cannot write BENCH_serve_scale.json\n";
    return 1;
  }
  std::cout << "wrote serve_scale.csv and BENCH_serve_scale.json\n";
  return ok ? 0 : 1;
}
