// Reproduces Fig. 3: cell flow under the three quasi-voxelization
// schemes. Runs global placement on the des_perf_1 analog, captures the
// cell flow between two mid-placement snapshots (the paper renders
// iteration 150), prints per-scheme field statistics and an ASCII
// rendering of the flow directions (the paper's color plot analog).
#include <cmath>
#include <numbers>

#include "bench_common.hpp"
#include "features/cell_flow.hpp"
#include "placer/global_placer.hpp"

using namespace laco;

namespace {

/// Direction glyphs: the paper's Fig. 3(b) color wheel, in ASCII.
char direction_glyph(double fx, double fy, double mag, double threshold) {
  if (mag < threshold) return '.';
  const double angle = std::atan2(fy, fx);
  // 8 compass sectors counterclockwise from +x: E NE N NW W SW S SE.
  static constexpr char glyphs[8] = {'>', '/', '^', '\\', '<', '/', 'v', '\\'};
  const int sector =
      ((static_cast<int>(std::lround(angle / (std::numbers::pi / 4))) % 8) + 8) % 8;
  return glyphs[sector];
}

}  // namespace

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 3: quasi-voxelization schemes and the cell-flow field", s);

  Design design = make_ispd2015_analog("des_perf_1", s.scale * 5.0);
  const int grid = 24;

  // Capture movable positions at ~70% and ~80% of the run: the active
  // spreading phase, where the flow field is most informative.
  std::vector<double> early_x, early_y, late_x, late_y;
  GlobalPlacerOptions opts;
  opts.bin_nx = 32;
  opts.bin_ny = 32;
  opts.max_iterations = s.max_iterations;
  opts.min_iterations = std::min(80, s.max_iterations);
  const int it_a = static_cast<int>(0.70 * s.max_iterations);
  const int it_b = static_cast<int>(0.80 * s.max_iterations);
  GlobalPlacer placer(design, opts);
  placer.set_observer([&](const Design& d, const IterationStats& stats) {
    if (stats.iteration == it_a) d.get_movable_positions(early_x, early_y);
    if (stats.iteration == it_b) d.get_movable_positions(late_x, late_y);
  });
  placer.run();
  if (late_x.empty()) {
    design.get_movable_positions(late_x, late_y);
  }
  if (early_x.empty()) {
    std::cout << "placement converged before the sampling window; rerun with a larger "
                 "LACO_BENCH_ITERS\n";
    return 0;
  }
  // Move the design to the late positions; flow = late − early.
  design.set_movable_positions(late_x, late_y);

  Table table({"scheme", "mean |flow|", "max |flow|", "active bins", "L1 vs weighted-sum"});
  CellFlow reference =
      compute_cell_flow(design, early_x, early_y, grid, grid, QuasiVoxScheme::kWeightedSum);
  for (const QuasiVoxScheme scheme : {QuasiVoxScheme::kSampling, QuasiVoxScheme::kAveraging,
                                      QuasiVoxScheme::kWeightedSum}) {
    const CellFlow flow = compute_cell_flow(design, early_x, early_y, grid, grid, scheme);
    double mean_mag = 0.0, max_mag = 0.0;
    int active = 0;
    for (std::size_t i = 0; i < flow.flow_x.size(); ++i) {
      const double mag = std::hypot(flow.flow_x[i], flow.flow_y[i]);
      mean_mag += mag;
      max_mag = std::max(max_mag, mag);
      if (mag > 1e-9) ++active;
    }
    mean_mag /= static_cast<double>(flow.flow_x.size());
    const double l1 = GridMap::l1_distance(flow.flow_x, reference.flow_x) +
                      GridMap::l1_distance(flow.flow_y, reference.flow_y);
    table.add_row({to_string(scheme), Table::fmt(mean_mag, 4), Table::fmt(max_mag, 4),
                   std::to_string(active), Table::fmt(l1, 3)});
  }
  std::cout << table.to_string() << '\n';
  table.write_csv("fig3_cellflow.csv");

  // ASCII analog of Fig. 3(b): flow directions under weighted-sum.
  std::cout << "cell-flow direction field (weighted-sum), iterations " << it_a << " -> "
            << it_b << ":\n";
  double mean_mag = 0.0;
  for (std::size_t i = 0; i < reference.flow_x.size(); ++i) {
    mean_mag += std::hypot(reference.flow_x[i], reference.flow_y[i]);
  }
  mean_mag /= static_cast<double>(reference.flow_x.size());
  for (int l = grid - 1; l >= 0; --l) {
    for (int k = 0; k < grid; ++k) {
      const double fx = reference.flow_x.at(k, l);
      const double fy = reference.flow_y.at(k, l);
      std::cout << direction_glyph(fx, fy, std::hypot(fx, fy), 0.1 * mean_mag);
    }
    std::cout << '\n';
  }
  std::cout << "\n(legend: ><^v diagonal glyphs = flow direction, '.' = negligible; the\n"
               " outward pattern from the clump center mirrors the paper's Fig. 3(b).)\n";
  return 0;
}
