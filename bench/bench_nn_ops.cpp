// nn kernel bench (docs/KERNELS.md): times the tiled conv2d /
// conv_transpose2d / group_norm kernels against the naive
// nn::reference oracle at DREAM-Cong model shapes (CongestionFcn,
// base_width 16, grid 64), checks bitwise agreement, and sweeps the
// kernel pool over thread counts.
//
// Writes BENCH_nn_ops.json. Timing rows are machine-dependent; the
// strict CI drift gate pins only the scale-invariant metrics
// (exact_* bitwise flags and allocs_per_call_conv2d). Speedup and
// thread-scaling keys are warn-only — on a single-core runner the
// sweep is flat by construction (see settings.hw_threads).
//
// Knobs: LACO_NN_BENCH_GRID (default 64), LACO_NN_BENCH_ITERS
// (timed repetitions per kernel, default 5).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "nn/autograd.hpp"
#include "nn/kernel_pool.hpp"
#include "nn/ops.hpp"
#include "nn/reference_kernels.hpp"
#include "obs/bench_report.hpp"

namespace laco::bench {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

nn::Tensor randn(nn::Shape shape, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros(std::move(shape));
  nn::fill_uniform(t, -1.0f, 1.0f, seed);
  return t;
}

/// Best-of-`iters` wall time of fn(), in nanoseconds.
double time_best_ns(int iters, const std::function<void()>& fn) {
  double best = 0.0;
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t t0 = now_ns();
    fn();
    const std::uint64_t t1 = now_ns();
    const double ns = static_cast<double>(t1 - t0);
    if (i == 0 || ns < best) best = ns;
  }
  return best;
}

bool bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(), a.numel() * sizeof(float)) == 0;
}

struct KernelCase {
  std::string name;
  std::function<nn::Tensor()> optimized;
  std::function<nn::Tensor()> reference;
};

}  // namespace
}  // namespace laco::bench

int main() {
  using namespace laco;
  using namespace laco::bench;

  const int grid = std::max(8, env_int("LACO_NN_BENCH_GRID", 64));
  const int iters = std::max(1, env_int("LACO_NN_BENCH_ITERS", 5));
  const int width = 16;  // CongestionFcn base_width

  std::cout << "==== nn kernel bench (grid " << grid << ", base_width " << width
            << ", best of " << iters << ") ====\n";

  obs::BenchReporter reporter("nn_ops");
  reporter.set_setting("grid", grid);
  reporter.set_setting("iters", iters);
  reporter.set_setting("base_width", width);
  reporter.set_setting("hw_threads",
                       static_cast<int>(std::thread::hardware_concurrency()));

  // DREAM-Cong layer shapes: stride-1 same conv at full grid, the two
  // stride-2 down convs, the 4x4 stride-2 deconv, and the group norm
  // between them.
  nn::Tensor x0 = randn({1, 3, grid, grid}, 1);
  nn::Tensor w_in = randn({width, 3, 3, 3}, 2);
  nn::Tensor b_in = randn({width}, 3);
  nn::Tensor x1 = randn({1, width, grid, grid}, 4);
  nn::Tensor w_s1 = randn({width, width, 3, 3}, 5);
  nn::Tensor w_s2 = randn({2 * width, width, 3, 3}, 6);
  nn::Tensor b_s = randn({2 * width}, 7);
  nn::Tensor x2 = randn({1, 2 * width, grid / 2, grid / 2}, 8);
  nn::Tensor w_up = randn({2 * width, width, 4, 4}, 9);
  nn::Tensor b_up = randn({width}, 10);
  nn::Tensor gamma = randn({2 * width}, 11);
  nn::Tensor beta = randn({2 * width}, 12);

  const KernelCase cases[] = {
      {"conv2d_s1",
       [&] { return nn::conv2d(x1, w_s1, b_in, 1, 1); },
       [&] { return nn::reference::conv2d(x1, w_s1, b_in, 1, 1); }},
      {"conv2d_s2",
       [&] { return nn::conv2d(x1, w_s2, b_s, 2, 1); },
       [&] { return nn::reference::conv2d(x1, w_s2, b_s, 2, 1); }},
      {"conv_transpose2d",
       [&] { return nn::conv_transpose2d(x2, w_up, b_up, 2, 1); },
       [&] { return nn::reference::conv_transpose2d(x2, w_up, b_up, 2, 1); }},
      {"group_norm",
       [&] { return nn::group_norm(x2, 8, gamma, beta); },
       [&] { return nn::reference::group_norm(x2, 8, gamma, beta); }},
  };

  bool all_exact = true;
  nn::set_kernel_threads(1);
  {
    nn::NoGradGuard guard;  // forward timing without graph bookkeeping
    for (const KernelCase& kc : cases) {
      const nn::Tensor y_opt = kc.optimized();
      const nn::Tensor y_ref = kc.reference();
      const bool exact = bitwise_equal(y_opt, y_ref);
      all_exact = all_exact && exact;
      const double opt_ns = time_best_ns(iters, [&] { kc.optimized(); });
      const double ref_ns = time_best_ns(iters, [&] { kc.reference(); });
      const double speedup = opt_ns > 0.0 ? ref_ns / opt_ns : 0.0;
      reporter.set_metric("exact_" + kc.name, exact ? 1.0 : 0.0);
      reporter.set_metric("speedup_" + kc.name, speedup);
      reporter.set_metric("opt_ns_" + kc.name, opt_ns);
      reporter.set_metric("ref_ns_" + kc.name, ref_ns);
      std::cout << kc.name << ": ref " << ref_ns / 1e6 << " ms, opt " << opt_ns / 1e6
                << " ms, speedup " << speedup << "x, bitwise " << (exact ? "OK" : "MISMATCH")
                << "\n";
    }
  }

  // Backward: full graph through the stride-1 conv (dW/db + dX passes).
  double bwd_speedup = 0.0;
  bool bwd_exact = true;
  {
    auto bwd_once = [&](bool reference, std::vector<float>* wgrad) {
      nn::Tensor x = randn({1, width, grid, grid}, 21);
      nn::Tensor w = randn({width, width, 3, 3}, 22);
      nn::Tensor b = randn({width}, 23);
      x.set_requires_grad(true);
      w.set_requires_grad(true);
      b.set_requires_grad(true);
      nn::Tensor y = reference ? nn::reference::conv2d(x, w, b, 1, 1) : nn::conv2d(x, w, b, 1, 1);
      nn::sum(y).backward();
      if (wgrad != nullptr) *wgrad = w.grad();
    };
    std::vector<float> wg_opt, wg_ref;
    bwd_once(false, &wg_opt);
    bwd_once(true, &wg_ref);
    bwd_exact = wg_opt.size() == wg_ref.size() &&
                std::memcmp(wg_opt.data(), wg_ref.data(), wg_opt.size() * sizeof(float)) == 0;
    all_exact = all_exact && bwd_exact;
    const double opt_ns = time_best_ns(iters, [&] { bwd_once(false, nullptr); });
    const double ref_ns = time_best_ns(iters, [&] { bwd_once(true, nullptr); });
    bwd_speedup = opt_ns > 0.0 ? ref_ns / opt_ns : 0.0;
    reporter.set_metric("exact_conv2d_bwd", bwd_exact ? 1.0 : 0.0);
    reporter.set_metric("speedup_conv2d_bwd", bwd_speedup);
    std::cout << "conv2d_bwd: ref " << ref_ns / 1e6 << " ms, opt " << opt_ns / 1e6
              << " ms, speedup " << bwd_speedup << "x, bitwise "
              << (bwd_exact ? "OK" : "MISMATCH") << "\n";
  }

  // Eager forward allocates exactly one TensorImpl (the op output).
  {
    nn::NoGradGuard guard;
    nn::conv2d(x1, w_s1, b_in, 1, 1);  // warm the pool + scratch
    const std::uint64_t a0 = nn::tensor_alloc_count();
    const int reps = 8;
    for (int i = 0; i < reps; ++i) nn::conv2d(x1, w_s1, b_in, 1, 1);
    const double allocs =
        static_cast<double>(nn::tensor_alloc_count() - a0) / static_cast<double>(reps);
    reporter.set_metric("allocs_per_call_conv2d", allocs);
    std::cout << "conv2d allocs/call: " << allocs << "\n";
  }

  // Thread sweep on the stride-1 conv. Flat when hw_threads == 1 —
  // that is why scaling keys are warn-only in CI.
  {
    nn::NoGradGuard guard;
    double ns_1t = 0.0;
    for (int threads : {1, 2, 4}) {
      nn::set_kernel_threads(threads);
      nn::conv2d(x1, w_s1, b_in, 1, 1);  // rebuild the pool outside timing
      const double ns = time_best_ns(iters, [&] { nn::conv2d(x1, w_s1, b_in, 1, 1); });
      if (threads == 1) ns_1t = ns;
      const double scaling = ns > 0.0 ? ns_1t / ns : 0.0;
      obs::Json row = obs::Json::object();
      row["threads"] = threads;
      row["ns_per_call"] = ns;
      row["scaling_vs_1t"] = scaling;
      reporter.add_row("thread_sweep", std::move(row));
      if (threads > 1) reporter.set_metric("scaling_" + std::to_string(threads) + "t", scaling);
      std::cout << "threads " << threads << ": " << ns / 1e6 << " ms/call, scaling "
                << scaling << "x\n";
    }
    nn::set_kernel_threads(1);
  }

  reporter.set_metric("exact_outputs", all_exact ? 1.0 : 0.0);
  if (!reporter.write()) {
    std::cerr << "bench_nn_ops: failed to write BENCH_nn_ops.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_nn_ops.json (exact_outputs=" << (all_exact ? 1 : 0) << ")\n";
  return all_exact ? 0 : 1;
}
