// Shared configuration for the experiment benches. Every bench reads
// the same environment knobs so the whole harness can be scaled from
// "smoke" (default, minutes on a laptop CPU) toward paper scale:
//
//   LACO_BENCH_SCALE   design size vs the paper's (default 0.004)
//   LACO_BENCH_RUNS    placement solutions per design  (default 2)
//   LACO_BENCH_ITERS   max GP iterations               (default 240)
//   LACO_BENCH_EPOCHS  training epochs (g and f)       (default 6)
//
// The paper's own settings correspond to SCALE=1.0, RUNS=100, 512×512
// feature grids — far beyond a single-CPU session; see EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "laco/pipeline.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace laco::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct BenchSettings {
  double scale = 0.004;
  int runs_per_design = 2;
  int max_iterations = 240;
  int epochs = 6;
};

inline BenchSettings settings() {
  BenchSettings s;
  s.scale = env_double("LACO_BENCH_SCALE", s.scale);
  s.runs_per_design = env_int("LACO_BENCH_RUNS", s.runs_per_design);
  s.max_iterations = env_int("LACO_BENCH_ITERS", s.max_iterations);
  s.epochs = env_int("LACO_BENCH_EPOCHS", s.epochs);
  return s;
}

/// Pipeline config derived from the bench settings.
inline PipelineConfig bench_pipeline_config(const BenchSettings& s = settings()) {
  PipelineConfig cfg = default_pipeline_config();
  cfg.scale = s.scale;
  cfg.runs_per_design = s.runs_per_design;
  cfg.trace.placer.max_iterations = s.max_iterations;
  cfg.trace.placer.min_iterations = std::min(80, s.max_iterations);
  cfg.lookahead_trainer.epochs = s.epochs;
  cfg.congestion_trainer.epochs = s.epochs + 2;
  return cfg;
}

/// A pipeline with the shared on-disk trace cache enabled (set
/// LACO_TRACE_CACHE to a directory; defaults to ./laco_trace_cache) so
/// the bench suite collects each trace set only once.
inline Pipeline make_pipeline(const BenchSettings& s = settings()) {
  Pipeline pipeline(bench_pipeline_config(s));
  const char* dir = std::getenv("LACO_TRACE_CACHE");
  pipeline.set_trace_cache_dir(dir != nullptr ? dir : "laco_trace_cache");
  return pipeline;
}

inline void print_header(const std::string& title, const BenchSettings& s = settings()) {
  set_log_level(LogLevel::kWarn);
  std::cout << "==== " << title << " ====\n"
            << "settings: scale=" << s.scale << " runs/design=" << s.runs_per_design
            << " max_iters=" << s.max_iterations << " epochs=" << s.epochs
            << "  (paper: scale=1.0, runs=100, Innovus labels)\n\n";
}

}  // namespace laco::bench
