// Extension ablation: the smooth-wirelength surrogate — DREAMPlace's
// weighted-average (WA) model vs the classic log-sum-exp (LSE). Both
// drive the same Nesterov loop; this compares converged HPWL, routed
// quality, and iteration count on a few designs.
#include "bench_common.hpp"
#include "placer/global_placer.hpp"
#include "router/congestion_eval.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Extension: WA vs LSE wirelength model", s);

  Table table({"design", "model", "GP iters", "HPWL", "routed WL", "WCS_H", "seconds"});
  for (const std::string name : {"des_perf_1", "fft_a", "matrix_mult_1"}) {
    for (const WirelengthKind kind :
         {WirelengthKind::kWeightedAverage, WirelengthKind::kLogSumExp}) {
      Design design = make_ispd2015_analog(name, s.scale);
      GlobalPlacerOptions opts;
      opts.bin_nx = 16;
      opts.bin_ny = 16;
      opts.max_iterations = s.max_iterations;
      opts.min_iterations = std::min(80, s.max_iterations);
      opts.wirelength_kind = kind;
      Timer timer;
      GlobalPlacer placer(design, opts);
      const PlacementResult result = placer.run();
      GlobalRouterConfig rc;
      rc.grid.nx = 32;
      rc.grid.ny = 32;
      const PlacementEvaluation eval = evaluate_placement(design, rc);
      table.add_row({name, kind == WirelengthKind::kWeightedAverage ? "WA" : "LSE",
                     std::to_string(result.iterations), Table::fmt(result.final_hpwl, 1),
                     Table::fmt(eval.routed_wirelength, 1), Table::fmt(eval.wcs_h, 2),
                     Table::fmt(timer.seconds(), 2)});
    }
    std::cout << "  " << name << " done\n";
  }
  std::cout << '\n' << table.to_string();
  table.write_csv("wirelength_models.csv");
  std::cout << "\nexpected shape: WA typically converges to slightly shorter wirelength "
               "(its gradient weights pin positions, LSE only ranks them), which is why "
               "DREAMPlace adopted it; both should be close.\n";
  return 0;
}
