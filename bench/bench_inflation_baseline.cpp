// Extension comparison (paper Sec. I context): the classic
// GR-in-the-loop cell-inflation baseline vs DREAMPlace and LACO. The
// traditional method obtains accurate congestion by invoking the global
// router between placement rounds (expensive); LACO replaces that with
// the look-ahead DNN penalty. This bench measures both the quality and
// the runtime trade-off.
#include "bench_common.hpp"
#include "laco/laco_placer.hpp"
#include "placer/inflation.hpp"
#include "placer/net_weighting.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Extension: classic congestion baselines (inflation, net weighting) vs DREAMPlace vs LACO", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& traces = pipeline.traces_for({"fft_1", "fft_2", "des_perf_1", "des_perf_b"});
  const LacoModels laco_models = pipeline.train_models(LacoScheme::kCellFlowKL, traces);

  const std::vector<std::string> designs{"des_perf_a", "edit_dist_a", "matrix_mult_b"};
  Table table({"design", "method", "WCS_H", "WCS_V", "routed WL", "seconds"});
  for (const std::string& name : designs) {
    // DREAMPlace baseline.
    {
      Design design = make_ispd2015_analog(name, s.scale);
      LacoPlacerConfig cfg;
      cfg.scheme = LacoScheme::kDreamPlace;
      cfg.placer = pipeline.config().trace.placer;
      cfg.router = pipeline.config().trace.router;
      Timer timer;
      const LacoRunResult r = run_laco_placement(design, cfg, nullptr);
      table.add_row({name, "DREAMPlace", Table::fmt(r.evaluation.wcs_h, 2),
                     Table::fmt(r.evaluation.wcs_v, 2),
                     Table::fmt(r.evaluation.routed_wirelength, 1),
                     Table::fmt(timer.seconds(), 2)});
    }
    // Classic inflation (GR in the loop).
    {
      Design design = make_ispd2015_analog(name, s.scale);
      InflationOptions io;
      io.placer = pipeline.config().trace.placer;
      io.router = pipeline.config().trace.router;
      io.rounds = 3;
      Timer timer;
      const InflationResult ir = run_inflation_placement(design, io);
      const PlacementEvaluation eval =
          evaluate_placement(design, pipeline.config().trace.router);
      table.add_row({name,
                     "Inflation(x" + Table::fmt(ir.mean_inflation, 2) + ")",
                     Table::fmt(eval.wcs_h, 2), Table::fmt(eval.wcs_v, 2),
                     Table::fmt(eval.routed_wirelength, 1), Table::fmt(timer.seconds(), 2)});
    }
    // Classic net weighting (GR in the loop).
    {
      Design design = make_ispd2015_analog(name, s.scale);
      NetWeightingOptions nw;
      nw.placer = pipeline.config().trace.placer;
      nw.router = pipeline.config().trace.router;
      nw.rounds = 3;
      Timer timer;
      const NetWeightingResult wr = run_net_weighting_placement(design, nw);
      const PlacementEvaluation eval =
          evaluate_placement(design, pipeline.config().trace.router);
      table.add_row({name, "NetWeight(x" + Table::fmt(wr.mean_weight, 2) + ")",
                     Table::fmt(eval.wcs_h, 2), Table::fmt(eval.wcs_v, 2),
                     Table::fmt(eval.routed_wirelength, 1), Table::fmt(timer.seconds(), 2)});
    }
    // LACO.
    {
      Design design = make_ispd2015_analog(name, s.scale);
      LacoPlacerConfig cfg;
      cfg.scheme = LacoScheme::kCellFlowKL;
      cfg.placer = pipeline.config().trace.placer;
      cfg.penalty = pipeline.penalty_config();
      cfg.router = pipeline.config().trace.router;
      Timer timer;
      const LacoRunResult r = run_laco_placement(design, cfg, &laco_models);
      table.add_row({name, "LACO", Table::fmt(r.evaluation.wcs_h, 2),
                     Table::fmt(r.evaluation.wcs_v, 2),
                     Table::fmt(r.evaluation.routed_wirelength, 1),
                     Table::fmt(timer.seconds(), 2)});
    }
    std::cout << "  " << name << " done\n";
  }
  std::cout << '\n' << table.to_string();
  table.write_csv("inflation_baseline.csv");
  std::cout << "\nexpected shape: inflation reduces congestion vs DREAMPlace at the cost of "
               "repeated routing (runtime); LACO achieves comparable or better WCS without "
               "GR in the loop (the paper's motivation for DNN-based congestion guidance).\n";
  return 0;
}
