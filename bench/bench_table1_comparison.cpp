// Reproduces Table I: DREAMPlace vs DREAM-Cong vs LACO on the 20
// ISPD-2015 analog designs — WCS_H, WCS_V (Eq. 18) and routed
// wirelength, with the Average and Ratio summary rows.
//
// Protocol (scaled version of Sec. IV-A/IV-B): training traces come from
// the first 8 designs; DREAM-Cong and LACO (Cell-flow+KL) models are
// trained on them; all three schemes then place every design and are
// measured by the global router after legalization.
#include "bench_common.hpp"
#include "laco/laco_placer.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Table I: WCS / wirelength comparison on ISPD-2015 analogs", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
  std::cout << "collected " << train_traces.size() << " training traces ("
            << ispd2015_first8_names().size() << " designs x " << s.runs_per_design
            << " runs)\n";

  const LacoModels dreamcong = pipeline.train_models(LacoScheme::kDreamCong, train_traces);
  const LacoModels laco_full = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);
  std::cout << "trained DREAM-Cong and LACO (Cell-flow+KL) models\n\n";

  const std::vector<LacoScheme> schemes{LacoScheme::kDreamPlace, LacoScheme::kDreamCong,
                                        LacoScheme::kCellFlowKL};
  const auto models_for = [&](LacoScheme scheme) -> const LacoModels* {
    switch (scheme) {
      case LacoScheme::kDreamCong: return &dreamcong;
      case LacoScheme::kCellFlowKL: return &laco_full;
      default: return nullptr;
    }
  };

  struct Row {
    std::string design;
    std::size_t cells, nets;
    double wcs_h[3], wcs_v[3], wl[3], ace5[3];
  };
  std::vector<Row> rows;

  // WCS is a max statistic and noisy on single runs at analog scale:
  // average each (design, scheme) over a few placement seeds.
  const int seeds = std::max(1, bench::env_int("LACO_BENCH_T1_SEEDS", 2));
  const PipelineConfig& pcfg = pipeline.config();
  for (const std::string& name : ispd2015_design_names()) {
    Row row{};
    row.design = name;
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      row.wcs_h[si] = row.wcs_v[si] = row.wl[si] = row.ace5[si] = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        Design design = make_ispd2015_analog(name, s.scale);
        row.cells = design.num_movable();
        row.nets = design.num_nets();
        LacoPlacerConfig cfg;
        cfg.scheme = schemes[si];
        cfg.placer = pcfg.trace.placer;
        cfg.placer.seed = pcfg.trace.placer.seed + static_cast<unsigned>(131 * seed);
        cfg.penalty = pipeline.penalty_config();
        cfg.router = pcfg.trace.router;
        const LacoRunResult result = run_laco_placement(design, cfg, models_for(schemes[si]));
        row.wcs_h[si] += result.evaluation.wcs_h / seeds;
        row.wcs_v[si] += result.evaluation.wcs_v / seeds;
        row.wl[si] += result.evaluation.routed_wirelength / seeds;
        row.ace5[si] += result.evaluation.ace.ace_5 / seeds;
      }
    }
    rows.push_back(row);
    std::cout << "  " << row.design << " done (cells=" << row.cells << ", " << seeds
              << " seeds/scheme)\n";
  }
  std::cout << '\n';

  // ACE(5%) is reported alongside the paper's WCS: a tail average is far
  // less seed-noisy than a max at this design scale.
  Table table({"Benchmark", "#Cells", "#Nets", "DP:WCS_H", "DP:WCS_V", "DP:ACE5", "DP:WL",
               "DC:WCS_H", "DC:WCS_V", "DC:ACE5", "DC:WL", "LACO:WCS_H", "LACO:WCS_V",
               "LACO:ACE5", "LACO:WL"});
  double avg[3][4] = {};
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.design, std::to_string(row.cells),
                                   std::to_string(row.nets)};
    for (int si = 0; si < 3; ++si) {
      cells.push_back(Table::fmt(row.wcs_h[si], 2));
      cells.push_back(Table::fmt(row.wcs_v[si], 2));
      cells.push_back(Table::fmt(row.ace5[si], 2));
      cells.push_back(Table::fmt(row.wl[si], 1));
      avg[si][0] += row.wcs_h[si] / rows.size();
      avg[si][1] += row.wcs_v[si] / rows.size();
      avg[si][2] += row.ace5[si] / rows.size();
      avg[si][3] += row.wl[si] / rows.size();
    }
    table.add_row(std::move(cells));
  }
  std::vector<std::string> avg_row{"Average", "-", "-"};
  std::vector<std::string> ratio_row{"Ratio", "-", "-"};
  for (int si = 0; si < 3; ++si) {
    for (int m = 0; m < 4; ++m) {
      avg_row.push_back(Table::fmt(avg[si][m], m == 3 ? 1 : 2));
      ratio_row.push_back(Table::fmt(avg[0][m] > 0 ? avg[si][m] / avg[0][m] : 0.0, 2));
    }
  }
  table.add_row(std::move(avg_row));
  table.add_row(std::move(ratio_row));
  std::cout << table.to_string();
  table.write_csv("table1_comparison.csv");

  std::cout << "\npaper reference (Table I ratio row): DREAM-Cong 0.99 / 0.98 / 1.01, "
               "LACO 0.92 / 0.94 / 1.00\nshape check: LACO should show the lowest average "
               "WCS with wirelength within ~1% of DREAMPlace.\n";
  return 0;
}
