// Reproduces Fig. 7: the cell-flow / invariant-feature-space ablation —
// No-flow-KL (flow removed everywhere), Less-flow-KL (g keeps flow, f
// does not see it), Cell-flow (no VAE), Cell-flow+KL (full LACO).
#include "bench_common.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 7: cell-flow and invariant-space ablation on NRMS / SSIM", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
  const std::vector<std::string> test_designs{"matrix_mult_1", "matrix_mult_a",
                                              "pci_bridge32_a", "pci_bridge32_b"};
  const auto& test_traces = pipeline.traces_for(test_designs);

  const std::vector<LacoScheme> schemes{LacoScheme::kNoFlowKL, LacoScheme::kLessFlowKL,
                                        LacoScheme::kCellFlow, LacoScheme::kCellFlowKL};

  Table summary({"scheme", "avg NRMS", "avg SSIM", "samples"});
  std::map<LacoScheme, PredictionQuality> results;
  for (const LacoScheme scheme : schemes) {
    const LacoModels models = pipeline.train_models(scheme, train_traces);
    const PredictionQuality q = pipeline.evaluate_prediction(models, test_traces);
    results[scheme] = q;
    summary.add_row({to_string(scheme), Table::fmt(q.nrms, 4), Table::fmt(q.ssim, 4),
                     std::to_string(q.samples)});
    std::cout << "  " << to_string(scheme) << ": NRMS=" << Table::fmt(q.nrms, 4)
              << " SSIM=" << Table::fmt(q.ssim, 4) << '\n';
  }
  std::cout << '\n' << summary.to_string();
  summary.write_csv("fig7_flow_ablation.csv");

  std::cout << "\npaper reference (Fig. 7): Less-flow-KL is comparable to Cell-flow+KL "
               "(slightly worse SSIM); removing flow entirely (No-flow-KL) clearly degrades "
               "both metrics; Cell-flow without the VAE branch trails Cell-flow+KL.\n";
  return 0;
}
