// Extension ablation (DESIGN.md): sweep of the look-ahead horizon K —
// how far ahead g predicts. The paper fixes K=50 of ~600 iterations
// (~8% of the run); this sweep shows prediction quality vs horizon,
// exposing the trade-off between de-shifting (large K) and
// predictability (small K).
#include "bench_common.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Extension: look-ahead horizon (K) sweep", s);

  const std::vector<std::string> train_designs{"fft_1", "fft_2", "des_perf_1", "des_perf_b"};
  const std::vector<std::string> test_designs{"pci_bridge32_b", "matrix_mult_1"};

  Table summary({"K (iterations)", "frames per run", "avg NRMS", "avg SSIM"});
  for (const int spacing : {10, 20, 40}) {
    PipelineConfig cfg = bench::bench_pipeline_config(s);
    cfg.trace.snapshot.spacing = spacing;
    Pipeline pipeline(cfg);
    {
      const char* cache = std::getenv("LACO_TRACE_CACHE");
      pipeline.set_trace_cache_dir(cache != nullptr ? cache : "laco_trace_cache");
    }
    const auto& train_traces = pipeline.traces_for(train_designs);
    const auto& test_traces = pipeline.traces_for(test_designs);
    if (train_traces.empty() || train_traces[0].snapshots.size() <
                                    static_cast<std::size_t>(cfg.lookahead_model.frames) + 1) {
      std::cout << "  K=" << spacing << ": not enough snapshots per run, skipped\n";
      continue;
    }
    const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);
    const PredictionQuality q = pipeline.evaluate_prediction(models, test_traces);
    summary.add_row({std::to_string(spacing),
                     std::to_string(train_traces[0].snapshots.size()), Table::fmt(q.nrms, 4),
                     Table::fmt(q.ssim, 4)});
    std::cout << "  K=" << spacing << ": NRMS=" << Table::fmt(q.nrms, 4) << '\n';
  }
  std::cout << '\n' << summary.to_string();
  summary.write_csv("lookahead_horizon.csv");
  std::cout << "\n(The paper uses K=50 over ~600-iteration runs; with this harness's "
               "shorter runs the proportional horizon is K~20.)\n";
  return 0;
}
