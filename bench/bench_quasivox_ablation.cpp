// Reproduces the Sec. IV-C quasi-voxelization ablation (text): the full
// LACO model trained with sampling / averaging / weighted-sum cell-flow
// downsampling. Paper: averaging gives 28.8% larger NRMS than
// weighted-sum, sampling 2.1% larger.
#include "bench_common.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Sec. IV-C: quasi-voxelization scheme ablation", s);

  const std::vector<std::string> test_designs{"matrix_mult_1", "pci_bridge32_b"};

  Table summary({"quasi-vox scheme", "avg NRMS", "avg SSIM", "NRMS vs weighted-sum"});
  std::map<QuasiVoxScheme, double> nrms_by_scheme;
  for (const QuasiVoxScheme scheme : {QuasiVoxScheme::kWeightedSum, QuasiVoxScheme::kSampling,
                                      QuasiVoxScheme::kAveraging}) {
    PipelineConfig cfg = bench::bench_pipeline_config(s);
    cfg.trace.snapshot.features.scheme = scheme;
    cfg.trace.snapshot.lookahead_features.scheme = scheme;
    Pipeline pipeline(cfg);
    {
      const char* cache = std::getenv("LACO_TRACE_CACHE");
      pipeline.set_trace_cache_dir(cache != nullptr ? cache : "laco_trace_cache");
    }
    const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
    const auto& test_traces = pipeline.traces_for(test_designs);
    const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);
    const PredictionQuality q = pipeline.evaluate_prediction(models, test_traces);
    nrms_by_scheme[scheme] = q.nrms;
    const double base = nrms_by_scheme[QuasiVoxScheme::kWeightedSum];
    summary.add_row({to_string(scheme), Table::fmt(q.nrms, 4), Table::fmt(q.ssim, 4),
                     Table::fmt(base > 0 ? (q.nrms - base) / base * 100.0 : 0.0, 1) + "%"});
    std::cout << "  " << to_string(scheme) << ": NRMS=" << Table::fmt(q.nrms, 4) << '\n';
  }
  std::cout << '\n' << summary.to_string();
  summary.write_csv("quasivox_ablation.csv");

  std::cout << "\npaper reference: averaging +28.8% NRMS vs weighted-sum; sampling +2.1%; "
               "weighted-sum is the default.\n";
  return 0;
}
