// Reproduces Fig. 6: congestion-prediction quality (NRMS ↓ / SSIM ↑) of
// the incremental LACO schemes — DREAM-Cong, Look-ahead-only, Cell-flow,
// Cell-flow+KL — trained on the first 8 designs and evaluated on
// held-out designs at mid-placement iterations, where distribution shift
// actually bites.
#include "bench_common.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 6: scheme comparison on NRMS / SSIM", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
  const std::vector<std::string> test_designs{"matrix_mult_1", "matrix_mult_a",
                                              "pci_bridge32_a", "pci_bridge32_b"};
  const auto& test_traces = pipeline.traces_for(test_designs);
  std::cout << "train traces: " << train_traces.size() << ", test traces: "
            << test_traces.size() << "\n\n";

  const std::vector<LacoScheme> schemes{LacoScheme::kDreamCong, LacoScheme::kLookAheadOnly,
                                        LacoScheme::kCellFlow, LacoScheme::kCellFlowKL};

  Table per_design({"scheme", "design", "NRMS", "SSIM", "samples"});
  Table summary({"scheme", "avg NRMS", "avg SSIM", "NRMS impr. vs DREAM-Cong",
                 "SSIM impr. vs DREAM-Cong"});
  double base_nrms = 0.0, base_ssim = 0.0;
  for (const LacoScheme scheme : schemes) {
    const LacoModels models = pipeline.train_models(scheme, train_traces);
    const auto by_design = pipeline.evaluate_prediction_per_design(models, test_traces);
    for (const auto& [design, q] : by_design) {
      per_design.add_row({to_string(scheme), design, Table::fmt(q.nrms, 4),
                          Table::fmt(q.ssim, 4), std::to_string(q.samples)});
    }
    const PredictionQuality total = pipeline.evaluate_prediction(models, test_traces);
    if (scheme == LacoScheme::kDreamCong) {
      base_nrms = total.nrms;
      base_ssim = total.ssim;
    }
    const double nrms_impr = base_nrms > 0 ? (base_nrms - total.nrms) / base_nrms * 100.0 : 0;
    const double ssim_impr =
        base_ssim != 0 ? (total.ssim - base_ssim) / std::abs(base_ssim) * 100.0 : 0;
    summary.add_row({to_string(scheme), Table::fmt(total.nrms, 4), Table::fmt(total.ssim, 4),
                     Table::fmt(nrms_impr, 1) + "%", Table::fmt(ssim_impr, 1) + "%"});
    std::cout << "  " << to_string(scheme) << ": NRMS=" << Table::fmt(total.nrms, 4)
              << " SSIM=" << Table::fmt(total.ssim, 4) << '\n';
  }
  std::cout << "\nper-design results:\n" << per_design.to_string();
  std::cout << "\nsummary:\n" << summary.to_string();
  per_design.write_csv("fig6_per_design.csv");
  summary.write_csv("fig6_summary.csv");

  std::cout << "\npaper reference (Fig. 6): Look-ahead-only improves NRMS/SSIM markedly over "
               "DREAM-Cong; Cell-flow and Cell-flow+KL improve further, reaching 34.8% NRMS "
               "and 28.7% SSIM improvement.\n";
  return 0;
}
