// Reproduces Fig. 8: the runtime breakdown of a LACO-guided placement —
// feature gathering, cell flow, look-ahead model, congestion model, and
// the base placement kernels. The paper's claim: the look-ahead
// mechanism itself adds little; feature gathering and congestion
// prediction dominate the penalty cost, and cell flow is much cheaper
// than feature gathering (cells only vs all nets).
#include "bench_common.hpp"
#include "laco/laco_placer.hpp"
#include "obs/bench_report.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 8: runtime breakdown of LACO-guided placement", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
  const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);

  RuntimeBreakdown total;
  const std::vector<std::string> designs{"des_perf_1", "fft_1", "pci_bridge32_a"};
  for (const std::string& name : designs) {
    Design design = make_ispd2015_analog(name, s.scale);
    LacoPlacerConfig cfg;
    cfg.scheme = LacoScheme::kCellFlowKL;
    cfg.placer = pipeline.config().trace.placer;
    cfg.penalty = pipeline.penalty_config();
    cfg.penalty.apply_every = 1;  // penalty every iteration, as the paper runs it
    cfg.router = pipeline.config().trace.router;
    const LacoRunResult result = run_laco_placement(design, cfg, &models);
    for (const auto& [phase, seconds, frac] : result.breakdown.table()) {
      total.add(phase, seconds);
    }
    std::cout << "  placed " << name << " (" << design.num_movable() << " cells)\n";
  }
  std::cout << '\n';

  obs::BenchReporter report("runtime");
  report.set_setting("scale", s.scale);
  report.set_setting("designs", static_cast<int>(designs.size()));

  Table table({"phase", "seconds", "share"});
  double total_s = 0.0;
  for (const auto& [phase, seconds, frac] : total.table()) {
    table.add_row({phase, Table::fmt(seconds, 3), Table::fmt(frac * 100.0, 1) + "%"});
    obs::Json row = obs::Json::object();
    row["phase"] = phase;
    row["seconds"] = seconds;
    row["share"] = frac;
    report.add_row("phases", std::move(row));
    total_s += seconds;
  }
  std::cout << table.to_string();
  table.write_csv("fig8_runtime.csv");

  const double flow = total.seconds("cell flow");
  const double gather = total.seconds("feature gathering");
  report.set_metric("total_s", total_s);
  report.set_metric("cell_flow_s", flow);
  report.set_metric("feature_gathering_s", gather);
  if (!report.write()) {
    std::cout << "WARNING: cannot write BENCH_runtime.json\n";
  } else {
    std::cout << "wrote BENCH_runtime.json\n";
  }
  std::cout << "\nshape check (paper Fig. 8): cell flow ("
            << Table::fmt(flow, 3) << "s) should cost well below feature gathering ("
            << Table::fmt(gather, 3) << "s); the look-ahead model adds modest overhead "
            << "relative to feature gathering + congestion prediction.\n";
  return 0;
}
