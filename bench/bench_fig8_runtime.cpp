// Reproduces Fig. 8: the runtime breakdown of a LACO-guided placement —
// feature gathering, cell flow, look-ahead model, congestion model, and
// the base placement kernels. The paper's claim: the look-ahead
// mechanism itself adds little; feature gathering and congestion
// prediction dominate the penalty cost, and cell flow is much cheaper
// than feature gathering (cells only vs all nets).
#include <chrono>
#include <filesystem>

#include "bench_common.hpp"
#include "laco/laco_placer.hpp"
#include "netlist/generator.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "placer/global_placer.hpp"

using namespace laco;

int main() {
  const bench::BenchSettings s = bench::settings();
  bench::print_header("Fig. 8: runtime breakdown of LACO-guided placement", s);

  Pipeline pipeline = bench::make_pipeline(s);
  const auto& train_traces = pipeline.traces_for(ispd2015_first8_names());
  const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);

  RuntimeBreakdown total;
  const std::vector<std::string> designs{"des_perf_1", "fft_1", "pci_bridge32_a"};
  for (const std::string& name : designs) {
    Design design = make_ispd2015_analog(name, s.scale);
    LacoPlacerConfig cfg;
    cfg.scheme = LacoScheme::kCellFlowKL;
    cfg.placer = pipeline.config().trace.placer;
    cfg.penalty = pipeline.penalty_config();
    cfg.penalty.apply_every = 1;  // penalty every iteration, as the paper runs it
    cfg.router = pipeline.config().trace.router;
    const LacoRunResult result = run_laco_placement(design, cfg, &models);
    for (const auto& [phase, seconds, frac] : result.breakdown.table()) {
      total.add(phase, seconds);
    }
    std::cout << "  placed " << name << " (" << design.num_movable() << " cells)\n";
  }
  std::cout << '\n';

  obs::BenchReporter report("runtime");
  report.set_setting("scale", s.scale);
  report.set_setting("designs", static_cast<int>(designs.size()));

  Table table({"phase", "seconds", "share"});
  double total_s = 0.0;
  for (const auto& [phase, seconds, frac] : total.table()) {
    table.add_row({phase, Table::fmt(seconds, 3), Table::fmt(frac * 100.0, 1) + "%"});
    obs::Json row = obs::Json::object();
    row["phase"] = phase;
    row["seconds"] = seconds;
    row["share"] = frac;
    report.add_row("phases", std::move(row));
    total_s += seconds;
  }
  std::cout << table.to_string();
  table.write_csv("fig8_runtime.csv");

  const double flow = total.seconds("cell flow");
  const double gather = total.seconds("feature gathering");
  report.set_metric("total_s", total_s);
  report.set_metric("cell_flow_s", flow);
  report.set_metric("feature_gathering_s", gather);

  // Snapshot overhead (docs/RELIABILITY.md "Placement snapshots &
  // resume"): wall time spent inside durable snapshot saves as a
  // fraction of the placement run, at the default every-10 cadence.
  // Guardrail: < 2%, checked warn-only by CI (bench-smoke).
  //
  // Measured from a single run via the placer.snapshot.save_ns
  // counter rather than an on/off A/B of whole runs: run-to-run
  // scheduler noise on CI runners is far larger than the overhead
  // being measured, while save time and run time from the *same* run
  // share the noise. Deliberately NOT scaled by LACO_BENCH_SCALE — on
  // toy designs the fixed write-temp-rename cost swamps the
  // microsecond iterations and the ratio says nothing about real
  // runs; a fixed 8k-cell design keeps iteration cost realistic.
  //
  // save_ns counts the loop's *blocking* cost (the copy handed to the
  // store's background writer). On a single-core machine the writer
  // shares the core with the loop, so the handoff degrades to a forced
  // context switch (~1 ms) and the number approaches the synchronous
  // cost; with >= 2 cores the write overlaps placement compute.
  {
    const char* snap_dir = "bench_snapshot_dir";
    GeneratorConfig gen;
    gen.num_cells = 8000;
    gen.seed = 7;
    Design design = generate_design(gen);
    GlobalPlacerOptions opts;
    opts.bin_nx = opts.bin_ny = 32;
    opts.max_iterations = 120;
    opts.min_iterations = 120;
    opts.target_overflow = 0.0;
    opts.stall_window = 0;
    opts.recovery.snapshot_dir = snap_dir;
    opts.recovery.snapshot_every = 10;
    obs::Counter& save_ns = obs::MetricRegistry::global().counter("placer.snapshot.save_ns");
    const std::uint64_t ns_before = save_ns.value();
    GlobalPlacer placer(design, opts);
    const auto start = std::chrono::steady_clock::now();
    placer.run();
    const double run_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const double save_s = static_cast<double>(save_ns.value() - ns_before) * 1e-9;
    std::filesystem::remove_all(snap_dir);
    const double overhead = run_s > save_s ? save_s / (run_s - save_s) : 0.0;
    report.set_metric("snapshot_run_s", run_s);
    report.set_metric("snapshot_save_s", save_s);
    report.set_metric("snapshot_overhead_frac", overhead);
    std::cout << "snapshot overhead (8k cells, 120 iters, every-10): run "
              << Table::fmt(run_s, 3) << "s, saves " << Table::fmt(save_s, 3) << "s ("
              << Table::fmt(overhead * 100.0, 2) << "% — guardrail < 2%)\n";
  }

  if (!report.write()) {
    std::cout << "WARNING: cannot write BENCH_runtime.json\n";
  } else {
    std::cout << "wrote BENCH_runtime.json\n";
  }
  std::cout << "\nshape check (paper Fig. 8): cell flow ("
            << Table::fmt(flow, 3) << "s) should cost well below feature gathering ("
            << Table::fmt(gather, 3) << "s); the look-ahead model adds modest overhead "
            << "relative to feature gathering + congestion prediction.\n";
  return 0;
}
