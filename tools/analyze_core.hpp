// laco-analyze — second-generation static analysis for the LACO tree
// (docs/STATIC_ANALYSIS.md). Where laco-lint matches regexes against
// stripped lines, laco-analyze lexes real C++ tokens (comments,
// string/char literals, raw strings, and line-spliced literals all
// removed with exact line numbers preserved) and builds the project
// include graph, so it can prove structural invariants:
//
//   - the layer DAG (util → obs → nn → plan → serve, …): no upward or
//     cyclic includes between src/ subsystems,
//   - include hygiene (IWYU-lite unused project headers, duplicates,
//     file-level include cycles),
//   - lock discipline: LACO_GUARDED_BY fields only touched under a
//     MutexLock scope or inside a LACO_REQUIRES-annotated method,
//   - Tensor pass-by-value (an accidental shared_ptr copy per call),
//   - determinism: regions marked `// LACO_DETERMINISTIC` must not use
//     unordered floating-point accumulation idioms,
//   - serialization discipline: a struct whose body uses serial::Writer
//     or serial::Reader must declare an explicit kVersion
//     (serial-versioned) and must appear in tests/test_snapshot.cpp's
//     round-trip suite (serial-roundtrip).
//
// This header is the library half: tools/laco_analyze.cpp wraps it in
// a CLI (registered as the `laco_analyze` ctest gate) and
// tests/test_analyze.cpp drives it over fixtures asserting exact
// diagnostics. A violating line can be suppressed with a trailing
// `// analyze-ok(rule-id)` comment stating why.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace laco::analyze {

struct Diagnostic {
  std::string relpath;  ///< root-relative, '/' separators
  int line = 1;
  std::string rule;     ///< stable id, e.g. "layer-dag"
  std::string message;

  /// Canonical rendering: "path:line: [rule] message".
  std::string str() const;
};

/// One lexed token of the comment/string-stripped source.
struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;
};

struct IncludeDirective {
  std::string path;  ///< as written inside the quotes/brackets
  int line = 1;
  bool angled = false;  ///< <...> (system) vs "..." (project)
};

/// The tokenizer's full view of one file.
struct TokenizedFile {
  /// Code tokens only: comments, strings, chars, raw strings and
  /// preprocessor directive lines are excluded.
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<std::string> defines;  ///< #define'd macro names
  bool has_pragma_once = false;
  /// Lines carrying a `// LACO_DETERMINISTIC` marker comment.
  std::vector<int> deterministic_marks;
  /// line -> rule ids suppressed by `// analyze-ok(rule)` on that line.
  std::map<int, std::set<std::string>> suppressions;
};

/// Strips //, /* */ comments and string/char literals — including raw
/// strings R"(…)" and backslash-newline-spliced literals — while
/// preserving line structure exactly, so downstream patterns never
/// match inside prose and diagnostics keep true line numbers.
std::string strip_source(const std::string& source);

/// strip_source plus blanked preprocessor *continuation* lines (the
/// lines after a `#…\` splice): line-oriented rule engines (laco-lint)
/// use this so macro bodies never trip per-line rules, while the
/// directive's first line (`#pragma once`, `#define NAME \`) stays
/// visible.
std::string strip_for_line_rules(const std::string& source);

/// Full tokenization of `source` (see TokenizedFile).
TokenizedFile tokenize(const std::string& source);

/// The architectural layer of a root-relative path, e.g.
/// "src/nn/tensor.hpp" -> "nn". The laco_flows sources that live under
/// src/placer/ (inflation, net_weighting) map to the virtual layer
/// "flows" above router. Empty for paths outside src/.
std::string layer_of(const std::string& relpath);

/// Layers `from` may include headers from (reflexive-transitive
/// closure of the CMake link graph in src/CMakeLists.txt).
bool layer_may_include(const std::string& from, const std::string& to);

struct Options {
  bool file_rules = true;  ///< token-level per-file rules
  bool tree_rules = true;  ///< include-graph rules over src/
};

/// Runs the per-file token rules (tensor-by-value, guarded-access,
/// nondeterministic-accum, duplicate-include) on one file. `relpath`
/// decides scope; `root` locates the paired header for guarded-field
/// harvesting (pass an empty path to skip pairing — fixture mode).
std::vector<Diagnostic> analyze_file(const std::filesystem::path& file,
                                     const std::string& relpath,
                                     const std::filesystem::path& root = {});

/// Root-relative paths of every C++ file the tree walk visits
/// (src/ tests/ tools/ bench/, skipping *_fixtures/ directories).
std::vector<std::string> collect_files(const std::filesystem::path& root);

/// Whole-tree analysis: per-file rules plus the include-graph rules
/// (layer-dag, include-cycle, iwyu-unused-include) over src/.
/// Diagnostics are sorted by path then line.
std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root,
                                     const Options& options = {});

}  // namespace laco::analyze
