// laco-lint CLI — walks the repository and enforces the project
// invariants in tools/lint_core.hpp. Registered as a tier-1 ctest
// (`laco_lint` for the textual rules, `laco_lint_headers` for the
// self-contained-header compile checks), so `ctest` fails on any
// violation. See docs/STATIC_ANALYSIS.md for the rule catalogue.
//
// Usage:
//   laco-lint --root DIR [options] [relpath...]
//     --root DIR         repository root (default: current directory)
//     --no-text          skip the textual rules
//     --self-contained   also compile every header standalone
//     --cxx PATH         compiler for --self-contained (default: c++)
//     --cxxflags FLAGS   flags for --self-contained
//     --jobs N           parallel header compiles (default: hw threads)
//     relpath...         lint only these root-relative files
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--no-text] [--self-contained] [--cxx PATH]"
               " [--cxxflags FLAGS] [--jobs N] [relpath...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  laco::lint::Options options;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      root = v;
    } else if (arg == "--no-text") {
      options.text_rules = false;
    } else if (arg == "--self-contained") {
      options.check_self_contained = true;
    } else if (arg == "--cxx") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.cxx = v;
    } else if (arg == "--cxxflags") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.cxx_flags = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.jobs = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      explicit_files.push_back(arg);
    }
  }

  std::vector<laco::lint::Diagnostic> diagnostics;
  try {
    if (explicit_files.empty()) {
      diagnostics = laco::lint::lint_tree(root, options);
    } else {
      for (const std::string& rel : explicit_files) {
        auto file_diags =
            laco::lint::lint_file(std::filesystem::path(root) / rel, rel, options);
        diagnostics.insert(diagnostics.end(), file_diags.begin(), file_diags.end());
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "laco-lint: " << e.what() << '\n';
    return 2;
  }

  for (const auto& d : diagnostics) std::cout << d.str() << '\n';
  if (!diagnostics.empty()) {
    std::cerr << "laco-lint: " << diagnostics.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
