#!/usr/bin/env sh
# Kill-and-resume chaos drill (docs/RELIABILITY.md, "Placement
# snapshots & resume"): place a synthetic design once uninterrupted
# (golden), then repeat the same run with the placer.iteration crash
# failpoint armed, resuming from the newest durable snapshot after
# every abort. The drill passes only if the stitched-together run is
# bitwise-identical to the golden run on every headline metric.
#
# Usage: crash_resume_drill.sh [BUILD_DIR]
#   BUILD_DIR must contain tools/laco and tools/laco-bench-check built
#   with -DLACO_FAILPOINTS=ON.
#
# The failpoint hash is a pure function of (seed, evaluation counter),
# so prob 0.04 / seed 3 crashes every fresh process at its 34th
# placement iteration on every machine: each attempt survives long
# enough to cut at least three new snapshots (cadence 10) before
# dying, and the 120-iteration run finishes within five attempts.
set -eu

BUILD_DIR=${1:-build-drill}
LACO="$BUILD_DIR/tools/laco"
BENCH_CHECK="$BUILD_DIR/tools/laco-bench-check"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/laco_crash_drill.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

PLACE_ARGS="--iters 120 --bins 16 --grid 32"

"$LACO" generate synthetic --cells 400 --seed 7 --out "$WORK/d.lbk"

echo "== golden run (no snapshots, no chaos) =="
"$LACO" place "$WORK/d.lbk" $PLACE_ARGS --json-out "$WORK/golden.json"

echo "== chaos runs: crash at iteration 34 of every process, resume from snapshot =="
export LACO_FAILPOINTS="placer.iteration=crash:0.04:3"
attempt=0
resume=""
while :; do
  attempt=$((attempt + 1))
  if [ "$attempt" -gt 15 ]; then
    echo "FAIL: drill did not complete within 15 attempts (no snapshot progress?)"
    exit 1
  fi
  if "$LACO" place "$WORK/d.lbk" $PLACE_ARGS \
      --snapshot-dir "$WORK/snap" --snapshot-every 10 $resume \
      --json-out "$WORK/resumed.json" > "$WORK/attempt.log" 2>&1; then
    cat "$WORK/attempt.log"
    break
  fi
  echo "attempt $attempt killed: $(grep -m1 'LACO_FAILPOINT' "$WORK/attempt.log" || echo 'no failpoint banner?')"
  resume="--resume"
done
unset LACO_FAILPOINTS
echo "completed after $attempt attempt(s)"

# The final attempt must actually have resumed mid-run, not survived
# end-to-end by luck — otherwise the drill proves nothing.
grep -q '"resumed_from_iteration": *[1-9]' "$WORK/resumed.json" || {
  echo "FAIL: final run did not resume from a snapshot"
  exit 1
}

echo "== resumed run must be bitwise-identical to golden =="
"$BENCH_CHECK" "$WORK/resumed.json" "$WORK/golden.json" --strict --max-drift 0 \
  --metric final_hpwl --metric final_overflow \
  --metric routed_wirelength --metric iterations

echo "PASS: kill-and-resume placement matches the uninterrupted run exactly"
