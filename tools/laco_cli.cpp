// laco — command-line driver for the library. Subcommands:
//
//   laco generate <design|synthetic> [--scale S] [--cells N] [--seed K]
//                 [--out FILE.lbk]
//       Creates an ISPD-2015 analog (by suite name) or a generic
//       synthetic design and writes it in bookshelf format.
//
//   laco place <FILE.lbk> [--scheme dreamplace|dreamcong|laco]
//              [--models DIR] [--iters N] [--bins B] [--out FILE.lbk]
//              [--svg FILE.svg]
//       Runs global placement (+ LG + DP), optionally congestion-guided
//       with models saved by `laco train` / the train_lookahead example.
//
//   laco eval <FILE.lbk> [--grid G] [--svg FILE.svg]
//       Routes the placement as-is and reports WCS / wirelength; the SVG
//       overlays the congestion map.
//
//   laco train [--scale S] [--runs R] [--scheme laco|dreamcong]
//              [--out DIR]
//       Collects traces on the first-8 suite designs, trains the chosen
//       model set, and saves it for `laco place --models`.
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "laco/laco_placer.hpp"
#include "laco/model_zoo.hpp"
#include "laco/pipeline.hpp"
#include "netlist/bookshelf_io.hpp"
#include "netlist/design_stats.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "netlist/svg_plot.hpp"
#include "util/logging.hpp"

namespace {

using namespace laco;

/// --key value option bag; positional args collected separately.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[a.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::cerr << "usage: laco <generate|place|eval|train> [args]\n"
               "run with a subcommand and no args for its options\n";
  return 2;
}

int cmd_generate(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "generate: need a design name (suite name or 'synthetic')\n";
    return 2;
  }
  const std::string name = args.positional[0];
  Design design;
  if (name == "synthetic") {
    GeneratorConfig cfg;
    cfg.num_cells = args.get_int("cells", 2000);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.num_fences = args.get_int("fences", 0);
    cfg.num_routing_blockages = args.get_int("blockages", 0);
    design = generate_design(cfg);
  } else {
    design = make_ispd2015_analog(name, args.get_double("scale", 0.01),
                                  static_cast<std::uint64_t>(args.get_int("seed", 0)));
  }
  std::cout << to_string(compute_stats(design)) << '\n';
  const std::string out = args.get("out", name + ".lbk");
  if (!write_bookshelf_file(design, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  std::cout << "wrote " << out << '\n';
  return 0;
}

int cmd_place(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "place: need an input .lbk file\n";
    return 2;
  }
  Design design = read_bookshelf_file(args.positional[0]);
  const std::string scheme_name = args.get("scheme", "dreamplace");

  LacoPlacerConfig cfg;
  if (scheme_name == "dreamplace") {
    cfg.scheme = LacoScheme::kDreamPlace;
  } else if (scheme_name == "dreamcong") {
    cfg.scheme = LacoScheme::kDreamCong;
  } else if (scheme_name == "laco") {
    cfg.scheme = LacoScheme::kCellFlowKL;
  } else {
    std::cerr << "place: unknown scheme '" << scheme_name << "'\n";
    return 2;
  }
  const int bins = args.get_int("bins", 32);
  cfg.placer.bin_nx = bins;
  cfg.placer.bin_ny = bins;
  cfg.placer.max_iterations = args.get_int("iters", 400);
  cfg.router.grid.nx = args.get_int("grid", 64);
  cfg.router.grid.ny = cfg.router.grid.nx;

  LacoModels models;
  const LacoModels* models_ptr = nullptr;
  if (traits_of(cfg.scheme).uses_penalty) {
    const std::string dir = args.get("models", "");
    if (dir.empty()) {
      std::cerr << "place: scheme '" << scheme_name << "' needs --models DIR\n";
      return 2;
    }
    models = load_models(dir);
    if (models.scheme != cfg.scheme) {
      std::cerr << "place: models in " << dir << " were trained for "
                << to_string(models.scheme) << "\n";
      return 2;
    }
    models_ptr = &models;
  }

  const LacoRunResult result = run_laco_placement(design, cfg, models_ptr);
  std::cout << "placement: " << result.placement.iterations << " iterations, HPWL "
            << result.evaluation.hpwl << ", overflow " << result.placement.final_overflow
            << "\nrouting: WCS_H " << result.evaluation.wcs_h << ", WCS_V "
            << result.evaluation.wcs_v << ", WL " << result.evaluation.routed_wirelength
            << ", legality violations " << result.evaluation.legality_violations << '\n';

  const std::string out = args.get("out", "");
  if (!out.empty() && !write_bookshelf_file(design, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  const std::string svg = args.get("svg", "");
  if (!svg.empty()) {
    SvgPlotOptions plot;
    plot.overlay = &result.evaluation.routing.congestion;
    plot.overlay_max = 1.0;
    if (!write_svg_file(design, svg, plot)) {
      std::cerr << "cannot write " << svg << '\n';
      return 1;
    }
    std::cout << "wrote " << svg << '\n';
  }
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "eval: need an input .lbk file\n";
    return 2;
  }
  Design design = read_bookshelf_file(args.positional[0]);
  GlobalRouterConfig rc;
  rc.grid.nx = args.get_int("grid", 64);
  rc.grid.ny = rc.grid.nx;
  const RoutingResult routing = route_design(design, rc);
  std::cout << "HPWL " << design.hpwl() << "\nWCS_H " << routing.wcs_h << ", WCS_V "
            << routing.wcs_v << "\nrouted WL " << routing.routed_wirelength
            << "\noverflow H/V " << routing.total_overflow_h << '/'
            << routing.total_overflow_v << "\npeak congestion " << routing.congestion.max()
            << '\n';
  const std::string svg = args.get("svg", "");
  if (!svg.empty()) {
    SvgPlotOptions plot;
    plot.overlay = &routing.congestion;
    plot.overlay_max = 1.0;
    if (!write_svg_file(design, svg, plot)) return 1;
    std::cout << "wrote " << svg << '\n';
  }
  return 0;
}

int cmd_train(const Args& args) {
  PipelineConfig cfg = default_pipeline_config();
  cfg.scale = args.get_double("scale", 0.004);
  cfg.runs_per_design = args.get_int("runs", 2);
  const std::string scheme_name = args.get("scheme", "laco");
  const LacoScheme scheme =
      scheme_name == "dreamcong" ? LacoScheme::kDreamCong : LacoScheme::kCellFlowKL;
  Pipeline pipeline(cfg);
  std::cout << "collecting traces on the first-8 suite designs (scale " << cfg.scale
            << ", runs " << cfg.runs_per_design << ")...\n";
  const auto& traces = pipeline.traces_for(ispd2015_first8_names());
  std::cout << "training " << to_string(scheme) << "...\n";
  const LacoModels models = pipeline.train_models(scheme, traces);
  const PredictionQuality q = pipeline.evaluate_prediction(models, traces);
  std::cout << "training-set prediction quality: NRMS " << q.nrms << ", SSIM " << q.ssim
            << '\n';
  const std::string out = args.get("out", "laco_models");
  if (!save_models(models, out)) {
    std::cerr << "cannot write models to " << out << '\n';
    return 1;
  }
  std::cout << "saved models to " << out << "/\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "place") return cmd_place(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "train") return cmd_train(args);
  } catch (const std::exception& e) {
    std::cerr << "laco " << command << ": " << e.what() << '\n';
    return 1;
  }
  return usage();
}
