// laco — command-line driver for the library. Subcommands:
//
//   laco generate <design|synthetic> [--scale S] [--cells N] [--seed K]
//                 [--out FILE.lbk]
//       Creates an ISPD-2015 analog (by suite name) or a generic
//       synthetic design and writes it in bookshelf format.
//
//   laco place <FILE.lbk> [--scheme dreamplace|dreamcong|laco]
//              [--models DIR] [--iters N] [--bins B] [--out FILE.lbk]
//              [--svg FILE.svg] [--trace-out FILE.json]
//              [--snapshot-dir DIR] [--snapshot-every N] [--resume]
//              [--json-out FILE.json]
//       Runs global placement (+ LG + DP), optionally congestion-guided
//       with models saved by `laco train` / the train_lookahead example.
//       --trace-out records per-phase spans and writes Chrome
//       trace_event JSON (chrome://tracing / ui.perfetto.dev).
//       --snapshot-dir enables durable iteration snapshots (every N
//       iterations, default 10) and --resume continues an interrupted
//       run from the newest valid snapshot — bitwise-identical to the
//       uninterrupted run (docs/RELIABILITY.md). --json-out writes the
//       run's headline metrics as a laco-bench JSON report, comparable
//       with laco-bench-check.
//
//   laco eval <FILE.lbk> [--grid G] [--svg FILE.svg]
//       Routes the placement as-is and reports WCS / wirelength; the SVG
//       overlays the congestion map.
//
//   laco train [--scale S] [--runs R] [--scheme laco|dreamcong]
//              [--out DIR]
//       Collects traces on the first-8 suite designs, trains the chosen
//       model set, and saves it for `laco place --models`.
//
//   laco serve [--models DIR] [--threads N] [--batch B] [--linger MS]
//              [--requests R] [--clients C] [--grid G] [--kind K]
//              [--stats-every-ms N] [--no-plan] [--shards N]
//       Stands up the resident batched inference service, drives a
//       synthetic request load against it (from C client threads), and
//       prints a throughput / latency / batching report against the
//       single-threaded unbatched baseline. Without --models a random
//       demo model set is used (throughput only, no trained weights).
//       --no-plan disables the compiled-plan fast path (docs/PLAN.md)
//       so forwards run eagerly — for A/B checks and bisection.
//       --shards N fronts N independent service shards with the
//       admission-controlled InferenceRouter (docs/SERVING.md).
//
//   laco serve --chaos RATE [--requests R] [--clients C] [--retries N]
//              [--seed K] [--shards N] [--queue-limit Q] [--saturate]
//              [...]
//       Chaos drill (docs/RELIABILITY.md): drives the service while
//       injecting faults — the "serve.forward" failpoint at probability
//       RATE when built with -DLACO_FAILPOINTS=ON, plus a RATE fraction
//       of requests aimed at a deliberately broken model set in every
//       build — and reports SLO stats. Exit 0 iff every request
//       completed (result or clean typed error; no hung futures).
//       With --shards N the load runs through the router; --saturate
//       shrinks the per-shard queues (--queue-limit, default 16) and
//       additionally requires shed > 0 with the p99 latency of admitted
//       requests under --deadline: shed, don't collapse.
//
// The LACO_FAILPOINTS environment variable arms failpoints in any
// subcommand, e.g. LACO_FAILPOINTS=registry.load=error laco place ...
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "laco/laco_placer.hpp"
#include "laco/model_zoo.hpp"
#include "laco/pipeline.hpp"
#include "netlist/bookshelf_io.hpp"
#include "netlist/design_stats.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "netlist/svg_plot.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan_cache.hpp"
#include "plan/verifier.hpp"
#include "serve/errors.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "util/errors.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace {

using namespace laco;

/// --key value option bag; positional args collected separately.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      // Boolean flags take no value; anything else would swallow the
      // next token.
      if (a == "--no-plan" || a == "--saturate" || a == "--resume") {
        args.options[a.substr(2)] = "1";
        continue;
      }
      // Both spellings: --key value and --key=value.
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        args.options[a.substr(2, eq - 2)] = a.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc) {
        args.options[a.substr(2)] = argv[++i];
        continue;
      }
    }
    args.positional.push_back(a);
  }
  return args;
}

int usage() {
  std::cerr << "usage: laco <generate|place|eval|train|serve|plan-verify> [args]\n"
               "run with a subcommand and no args for its options\n";
  return 2;
}

int cmd_generate(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "generate: need a design name (suite name or 'synthetic')\n";
    return 2;
  }
  const std::string name = args.positional[0];
  Design design;
  if (name == "synthetic") {
    GeneratorConfig cfg;
    cfg.num_cells = args.get_int("cells", 2000);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.num_fences = args.get_int("fences", 0);
    cfg.num_routing_blockages = args.get_int("blockages", 0);
    design = generate_design(cfg);
  } else {
    design = make_ispd2015_analog(name, args.get_double("scale", 0.01),
                                  static_cast<std::uint64_t>(args.get_int("seed", 0)));
  }
  std::cout << to_string(compute_stats(design)) << '\n';
  const std::string out = args.get("out", name + ".lbk");
  if (!write_bookshelf_file(design, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  std::cout << "wrote " << out << '\n';
  return 0;
}

int cmd_place(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "place: need an input .lbk file\n";
    return 2;
  }
  Design design = read_bookshelf_file(args.positional[0]);
  const std::string scheme_name = args.get("scheme", "dreamplace");

  LacoPlacerConfig cfg;
  if (scheme_name == "dreamplace") {
    cfg.scheme = LacoScheme::kDreamPlace;
  } else if (scheme_name == "dreamcong") {
    cfg.scheme = LacoScheme::kDreamCong;
  } else if (scheme_name == "laco") {
    cfg.scheme = LacoScheme::kCellFlowKL;
  } else {
    std::cerr << "place: unknown scheme '" << scheme_name << "'\n";
    return 2;
  }
  const int bins = args.get_int("bins", 32);
  cfg.placer.bin_nx = bins;
  cfg.placer.bin_ny = bins;
  cfg.placer.max_iterations = args.get_int("iters", 400);
  cfg.router.grid.nx = args.get_int("grid", 64);
  cfg.router.grid.ny = cfg.router.grid.nx;

  // Crash-safe placement (docs/RELIABILITY.md): --snapshot-dir enables
  // durable iteration snapshots; --resume continues from the newest one.
  cfg.placer.recovery.snapshot_dir = args.get("snapshot-dir", "");
  cfg.placer.recovery.resume = args.options.count("resume") != 0;
  if (!cfg.placer.recovery.snapshot_dir.empty()) {
    cfg.placer.recovery.snapshot_every = args.get_int("snapshot-every", 10);
  } else if (args.options.count("snapshot-every") != 0 || cfg.placer.recovery.resume) {
    std::cerr << "place: --snapshot-every/--resume need --snapshot-dir DIR\n";
    return 2;
  }

  LacoModels models;
  const LacoModels* models_ptr = nullptr;
  if (traits_of(cfg.scheme).uses_penalty) {
    const std::string dir = args.get("models", "");
    if (dir.empty()) {
      std::cerr << "place: scheme '" << scheme_name << "' needs --models DIR\n";
      return 2;
    }
    // One load path for CLI and service: the process-wide registry
    // caches the set, so repeated embedded invocations skip the disk.
    const auto shared = serve::shared_registry().get(dir);
    if (shared->scheme != cfg.scheme) {
      std::cerr << "place: models in " << dir << " were trained for "
                << to_string(shared->scheme) << "\n";
      return 2;
    }
    models = *shared;  // shallow copy: networks stay shared (and frozen)
    models_ptr = &models;
  }

  // --trace-out FILE: record per-phase spans for the whole run and
  // export Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::global().start();

  const LacoRunResult result = run_laco_placement(design, cfg, models_ptr);

  if (!trace_out.empty()) {
    obs::TraceRecorder::global().stop();
    if (!obs::TraceRecorder::global().write_chrome_trace(trace_out)) {
      std::cerr << "cannot write trace " << trace_out << '\n';
      return 1;
    }
    std::cout << "wrote trace " << trace_out << " ("
              << obs::TraceRecorder::global().event_count()
              << " events; load in chrome://tracing)\n";
  }
  std::cout << "placement: " << result.placement.iterations << " iterations, HPWL "
            << result.evaluation.hpwl << ", overflow " << result.placement.final_overflow
            << "\nrouting: WCS_H " << result.evaluation.wcs_h << ", WCS_V "
            << result.evaluation.wcs_v << ", WL " << result.evaluation.routed_wirelength
            << ", legality violations " << result.evaluation.legality_violations << '\n';
  const PlacerRecoveryStats& rec = result.placement.recovery;
  if (rec.resumed_from_iteration >= 0 || rec.snapshot_saves > 0 || rec.watchdog_trips > 0) {
    std::cout << "recovery: resumed_from_iteration " << rec.resumed_from_iteration
              << ", snapshot_saves " << rec.snapshot_saves << ", watchdog_trips "
              << rec.watchdog_trips << ", rollbacks " << rec.rollbacks << '\n';
  }

  // --json-out FILE: headline metrics as a laco-bench report, so drills
  // can diff runs exactly with `laco-bench-check a.json b.json --strict`.
  const std::string json_out = args.get("json-out", "");
  if (!json_out.empty()) {
    obs::BenchReporter report("place");
    report.set_setting("design", args.positional[0]);
    report.set_setting("scheme", scheme_name);
    report.set_setting("snapshot_every", cfg.placer.recovery.snapshot_every);
    report.set_setting("resume", cfg.placer.recovery.resume);
    report.set_metric("iterations", result.placement.iterations);
    report.set_metric("final_hpwl", result.placement.final_hpwl);
    report.set_metric("final_overflow", result.placement.final_overflow);
    report.set_metric("routed_wirelength", result.evaluation.routed_wirelength);
    report.set_metric("wcs_h", result.evaluation.wcs_h);
    report.set_metric("wcs_v", result.evaluation.wcs_v);
    report.set_metric("legality_violations",
                      static_cast<double>(result.evaluation.legality_violations));
    report.set_metric("penalty_applications",
                      static_cast<double>(result.penalty_stats.applications));
    report.set_metric("penalty_analytic_fallbacks",
                      static_cast<double>(result.penalty_stats.analytic_fallbacks));
    report.set_metric("snapshot_saves", static_cast<double>(rec.snapshot_saves));
    report.set_metric("watchdog_trips", static_cast<double>(rec.watchdog_trips));
    report.set_metric("rollbacks", static_cast<double>(rec.rollbacks));
    report.set_metric("resumed_from_iteration", rec.resumed_from_iteration);
    if (!report.write(json_out)) {
      std::cerr << "cannot write " << json_out << '\n';
      return 1;
    }
    std::cout << "wrote " << json_out << '\n';
  }

  const std::string out = args.get("out", "");
  if (!out.empty() && !write_bookshelf_file(design, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  const std::string svg = args.get("svg", "");
  if (!svg.empty()) {
    SvgPlotOptions plot;
    plot.overlay = &result.evaluation.routing.congestion;
    plot.overlay_max = 1.0;
    if (!write_svg_file(design, svg, plot)) {
      std::cerr << "cannot write " << svg << '\n';
      return 1;
    }
    std::cout << "wrote " << svg << '\n';
  }
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "eval: need an input .lbk file\n";
    return 2;
  }
  Design design = read_bookshelf_file(args.positional[0]);
  GlobalRouterConfig rc;
  rc.grid.nx = args.get_int("grid", 64);
  rc.grid.ny = rc.grid.nx;
  const RoutingResult routing = route_design(design, rc);
  std::cout << "HPWL " << design.hpwl() << "\nWCS_H " << routing.wcs_h << ", WCS_V "
            << routing.wcs_v << "\nrouted WL " << routing.routed_wirelength
            << "\noverflow H/V " << routing.total_overflow_h << '/'
            << routing.total_overflow_v << "\npeak congestion " << routing.congestion.max()
            << '\n';
  const std::string svg = args.get("svg", "");
  if (!svg.empty()) {
    SvgPlotOptions plot;
    plot.overlay = &routing.congestion;
    plot.overlay_max = 1.0;
    if (!write_svg_file(design, svg, plot)) return 1;
    std::cout << "wrote " << svg << '\n';
  }
  return 0;
}

int cmd_train(const Args& args) {
  PipelineConfig cfg = default_pipeline_config();
  cfg.scale = args.get_double("scale", 0.004);
  cfg.runs_per_design = args.get_int("runs", 2);
  const std::string scheme_name = args.get("scheme", "laco");
  const LacoScheme scheme =
      scheme_name == "dreamcong" ? LacoScheme::kDreamCong : LacoScheme::kCellFlowKL;
  Pipeline pipeline(cfg);
  std::cout << "collecting traces on the first-8 suite designs (scale " << cfg.scale
            << ", runs " << cfg.runs_per_design << ")...\n";
  const auto& traces = pipeline.traces_for(ispd2015_first8_names());
  std::cout << "training " << to_string(scheme) << "...\n";
  const LacoModels models = pipeline.train_models(scheme, traces);
  const PredictionQuality q = pipeline.evaluate_prediction(models, traces);
  std::cout << "training-set prediction quality: NRMS " << q.nrms << ", SSIM " << q.ssim
            << '\n';
  const std::string out = args.get("out", "laco_models");
  if (!save_models(models, out)) {
    std::cerr << "cannot write models to " << out << '\n';
    return 1;
  }
  std::cout << "saved models to " << out << "/\n";
  return 0;
}

/// Random demo model set for `laco serve` without --models: real
/// architectures, untrained weights — enough to exercise the service.
std::shared_ptr<const LacoModels> demo_models(bool with_lookahead) {
  auto m = std::make_shared<LacoModels>();
  m->scheme = with_lookahead ? LacoScheme::kCellFlowKL : LacoScheme::kDreamCong;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(m->scheme);
  m->congestion = std::make_shared<CongestionFcn>(fc);
  if (with_lookahead) {
    LookAheadConfig gc;
    gc.channels_per_frame = g_channels(m->scheme);
    m->lookahead = std::make_shared<LookAheadModel>(gc);
  }
  for (nn::Tensor p : m->congestion->parameters()) p.set_requires_grad(false);
  if (m->lookahead) {
    for (nn::Tensor p : m->lookahead->parameters()) p.set_requires_grad(false);
  }
  return m;
}

/// `laco plan-verify [--models DIR] [--grid N]`: compile the model
/// set's inference plans offline and run the plan IR verifier
/// (src/plan/verifier.hpp) over each, printing nodes / arena layout /
/// checks per plan. Exit 1 when any plan fails to compile or verify.
int cmd_plan_verify(const Args& args) {
  plan::set_verify_enabled(true);
  const int grid = args.get_int("grid", 16);
  std::shared_ptr<const LacoModels> models;
  const std::string dir = args.get("models", "");
  if (!dir.empty()) {
    models = serve::shared_registry().get(dir);
  } else {
    models = demo_models(true);
    std::cout << "no --models given: verifying a randomly initialized demo set\n";
  }

  std::mt19937 rng(11);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  const auto random_input = [&](int channels) {
    nn::Tensor t = nn::Tensor::zeros({1, channels, grid, grid});
    for (float& v : t.data()) v = uniform(rng);
    return t;
  };

  int bad = 0;
  const auto run_case = [&](const std::string& name, const plan::TracedFn& fn,
                            const std::vector<nn::Tensor>& inputs) {
    const plan::CompileResult compiled = plan::compile(fn, inputs);
    if (!compiled.plan) {
      std::cout << name << ": REJECTED — " << compiled.error << '\n';
      ++bad;
      return;
    }
    const plan::VerifyReport report = plan::verify(*compiled.plan);
    std::cout << name << ": " << compiled.plan->num_nodes() << " nodes, "
              << compiled.plan->arena_spans().size() << " arena spans, "
              << compiled.plan->arena_floats() * sizeof(float) << " arena bytes — "
              << (report.ok() ? "OK" : "REJECTED") << " (" << report.checks_run
              << " checks)\n";
    if (!report.ok()) {
      std::cout << report.str() << '\n';
      ++bad;
    }
  };

  {
    const int c = models->congestion->config().in_channels;
    run_case("f congestion [" + std::to_string(c) + 'x' + std::to_string(grid) + 'x' +
                 std::to_string(grid) + "]",
             [models](const std::vector<nn::Tensor>& in) {
               return models->congestion->forward(in[0]);
             },
             {random_input(c)});
  }
  if (models->lookahead) {
    const int c = models->lookahead->config().frames *
                  models->lookahead->config().channels_per_frame;
    run_case("g lookahead [" + std::to_string(c) + 'x' + std::to_string(grid) + 'x' +
                 std::to_string(grid) + "]",
             [models](const std::vector<nn::Tensor>& in) {
               return models->lookahead->forward(in[0]).prediction;
             },
             {random_input(c)});
  }

  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  std::cout << snap.to_string("plan.verify.");
  return bad == 0 ? 0 : 1;
}

/// `laco serve --chaos RATE`: drive the service under injected faults
/// and report SLO stats. The pass criterion is total completion: every
/// submitted request resolves with a tensor or a clean typed error
/// within the wait budget — a single hung future fails the drill.
int run_chaos(const Args& args, double rate) {
  serve::ServiceConfig sc;
  sc.num_threads = args.get_int("threads", 4);
  sc.batcher.max_batch = args.get_int("batch", 4);
  sc.batcher.max_linger_ms = args.get_double("linger", 1.0);
  sc.deadline_ms = args.get_double("deadline", 0.0);
  sc.max_retries = args.get_int("retries", 1);
  sc.retry_backoff_ms = 0.2;
  sc.breaker.failure_threshold = args.get_int("breaker-threshold", 4);
  sc.breaker.cooldown_ms = args.get_double("breaker-cooldown", 5.0);
  const int requests = args.get_int("requests", 256);
  const int clients = std::max(1, args.get_int("clients", 4));
  const int grid = args.get_int("grid", 16);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x1ac0));
  const int shards = args.get_int("shards", 0);
  const bool saturate = args.get_int("saturate", 0) != 0;
  if (saturate && shards <= 0) {
    std::cerr << "chaos: --saturate requires --shards N\n";
    return 2;
  }
  // Saturation drill: admitted requests must still meet a deadline, so
  // default one generous enough for CI machines when none was given.
  if (saturate && sc.deadline_ms <= 0.0) sc.deadline_ms = 2000.0;
  serve::RouterConfig rc;
  rc.num_shards = shards;
  rc.shard = sc;
  // Queue bound: tight under --saturate so the burst sheds, effectively
  // unbounded otherwise (the drill's burst must fit).
  rc.admission.queue_limit = static_cast<std::size_t>(
      std::max(1, args.get_int("queue-limit", saturate ? 16 : std::max(requests, 256))));
  rc.admission.drain_width = sc.num_threads * std::max(1, sc.batcher.max_batch);

  const auto models = demo_models(false);
  // Natural fault injection that works in every build: a model set
  // whose f expects one channel more than the requests carry, so every
  // batch against it throws a (permanent) shape error. Its consecutive
  // failures also walk the circuit breaker through open/half-open.
  auto broken = std::make_shared<LacoModels>();
  broken->scheme = LacoScheme::kDreamCong;
  CongestionFcnConfig bc;
  bc.in_channels = models->congestion->config().in_channels + 1;
  broken->congestion = std::make_shared<CongestionFcn>(bc);
  for (nn::Tensor p : broken->congestion->parameters()) p.set_requires_grad(false);

  if (failpoints_compiled_in()) {
    FailpointSpec spec;
    spec.mode = FailpointMode::kError;
    spec.probability = rate;
    spec.seed = seed;
    FailpointRegistry::instance().arm("serve.forward", spec);
    std::cout << "chaos: armed failpoint serve.forward (error, p=" << rate << ", seed " << seed
              << ")\n";
  } else {
    std::cout << "chaos: failpoint hooks compiled out (build with -DLACO_FAILPOINTS=ON); "
                 "using broken-model injection only\n";
  }
  // Every stride-th request targets the broken set — roughly a `rate`
  // fraction, deterministic across runs.
  const int stride =
      std::max(2, static_cast<int>(std::lround(1.0 / std::clamp(rate, 0.02, 0.5))));

  const int channels = models->congestion->config().in_channels;
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  for (int r = 0; r < requests; ++r) {
    nn::Tensor t = nn::Tensor::zeros({1, channels, grid, grid});
    for (float& v : t.data()) v = uniform(rng);
    inputs.push_back(std::move(t));
  }

  std::atomic<int> ok{0}, transient{0}, deadline{0}, permanent{0}, shed{0}, hung{0};
  serve::ServiceCounters counters;
  serve::RouterCounters router_counters;
  std::vector<double> latencies;
  double wall_s = 0.0;
  {
    std::unique_ptr<serve::InferenceService> service;
    std::unique_ptr<serve::InferenceRouter> router;
    if (shards > 0) {
      router = std::make_unique<serve::InferenceRouter>(rc);
    } else {
      service = std::make_unique<serve::InferenceService>(sc);
    }
    // Deterministic priority mix for the router path: every 4th request
    // interactive, every 4th best-effort, the rest batch — under
    // saturation the classes shed in reverse priority order.
    const auto priority_of = [](std::size_t i) {
      if (i % 4 == 0) return serve::Priority::kInteractive;
      if (i % 4 == 3) return serve::Priority::kBestEffort;
      return serve::Priority::kBatch;
    };
    Timer timer;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<nn::Tensor>> futures;
        for (std::size_t i = static_cast<std::size_t>(c); i < inputs.size();
             i += static_cast<std::size_t>(clients)) {
          const auto& target = (i % static_cast<std::size_t>(stride) == 0) ? broken : models;
          futures.push_back(
              router ? router->submit(target, serve::ModelKind::kCongestion, inputs[i],
                                      priority_of(i))
                     : service->submit(target, serve::ModelKind::kCongestion, inputs[i]));
        }
        for (auto& f : futures) {
          // The service contract says every future resolves; the wait
          // budget turns a violation into a counted failure instead of
          // a wedged drill.
          if (f.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
            ++hung;
            continue;
          }
          try {
            f.get();
            ++ok;
          } catch (const serve::ShedError&) {
            ++shed;  // admission rejected: queues at class capacity
          } catch (const serve::DeadlineExceededError&) {
            ++deadline;
          } catch (const TransientError&) {
            ++transient;  // injected faults, exhausted retries, open breaker
          } catch (const std::exception&) {
            ++permanent;  // broken-model shape errors
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    wall_s = timer.seconds();
    if (router) {
      router->drain();
      router_counters = router->counters();
      latencies = router->latency_snapshot_ms();
      for (int i = 0; i < router->num_shards(); ++i) {
        const serve::ServiceCounters shard = router->shard(i).counters();
        counters.batches += shard.batches;
        counters.retried_batches += shard.retried_batches;
        counters.failed_batches += shard.failed_batches;
        counters.deadline_expired += shard.deadline_expired;
        counters.breaker_rejected += shard.breaker_rejected;
        counters.breaker_opens += shard.breaker_opens;
        counters.breakers_open += shard.breakers_open;
        std::cout << "shard " << i << ": " << shard.batches << " batches, "
                  << shard.failed_batches << " failed, " << shard.breaker_opens
                  << " breaker opens, " << shard.breakers_open << " breakers not closed, "
                  << router->shard_queued(i) << " queued after drain\n";
      }
    } else {
      service->drain();
      counters = service->counters();
      latencies = service->latency_snapshot_ms();
    }
  }
  if (failpoints_compiled_in()) {
    const FailpointStats fp = FailpointRegistry::instance().stats("serve.forward");
    FailpointRegistry::instance().disarm("serve.forward");
    std::cout << "chaos: serve.forward fired " << fp.fires << "/" << fp.evaluations
              << " evaluations\n";
  }

  const int resolved = ok + transient + deadline + permanent + shed;
  const double completion = 100.0 * resolved / std::max(1, requests);
  const double p99 = serve::percentile(latencies, 99.0);
  std::cout << "chaos SLO: " << requests << " requests in " << wall_s << "s, " << completion
            << "% completed (" << ok << " ok, " << transient << " transient, " << deadline
            << " deadline, " << permanent << " permanent, " << shed << " shed, " << hung
            << " hung)\n"
            << "service: " << counters.batches << " batches, " << counters.retried_batches
            << " retried, " << counters.failed_batches << " failed, "
            << counters.deadline_expired << " expired, " << counters.breaker_rejected
            << " breaker-rejected, " << counters.breaker_opens << " breaker opens\n"
            << "latency ms (admitted): p50 " << serve::percentile(latencies, 50.0) << ", p99 "
            << p99 << '\n';
  if (shards > 0) {
    std::cout << "router: " << router_counters.admitted << " admitted, "
              << router_counters.shed << " shed (" << router_counters.shed_queue_full
              << " queue-full, " << router_counters.shed_deadline << " deadline), "
              << router_counters.completed << " completed; shed by class:";
    for (int c = 0; c < serve::kNumPriorities; ++c) {
      std::cout << ' ' << serve::to_string(static_cast<serve::Priority>(c)) << '='
                << router_counters.shed_by_class[static_cast<std::size_t>(c)];
    }
    std::cout << '\n';
  }

  bool pass = hung == 0 && resolved == requests;
  if (!pass) std::cout << "chaos FAIL: some requests never resolved\n";
  if (pass && saturate) {
    // Shed-don't-collapse: under deliberate overload the router must
    // reject some load at admission AND keep the p99 of what it DID
    // admit inside the deadline.
    if (router_counters.shed == 0) {
      std::cout << "chaos FAIL: saturation drill shed nothing (queue-limit "
                << rc.admission.queue_limit << " never filled)\n";
      pass = false;
    } else if (sc.deadline_ms > 0.0 && p99 > sc.deadline_ms) {
      std::cout << "chaos FAIL: admitted-request p99 " << p99 << " ms exceeds the "
                << sc.deadline_ms << " ms deadline\n";
      pass = false;
    }
  }
  if (pass) {
    std::cout << (saturate ? "chaos PASS: every request resolved; shed, did not collapse\n"
                           : "chaos PASS: every request completed cleanly\n");
  }
  return pass ? 0 : 1;
}

int cmd_serve(const Args& args) {
  if (args.get_int("no-plan", 0) != 0) plan::set_plans_enabled(false);
  const double chaos = args.get_double("chaos", 0.0);
  if (chaos > 0.0) return run_chaos(args, chaos);

  serve::ServiceConfig sc;
  sc.num_threads = args.get_int("threads", 4);
  sc.batcher.max_batch = args.get_int("batch", 8);
  sc.batcher.max_linger_ms = args.get_double("linger", 2.0);
  const int requests = args.get_int("requests", 256);
  const int clients = std::max(1, args.get_int("clients", 4));
  const int grid = args.get_int("grid", 32);
  const int shards = args.get_int("shards", 0);
  const std::string kind_name = args.get("kind", "congestion");

  std::shared_ptr<const LacoModels> models;
  const std::string dir = args.get("models", "");
  if (!dir.empty()) {
    models = serve::shared_registry().get(dir);
  } else {
    models = demo_models(kind_name != "congestion");
    std::cout << "no --models given: using a randomly initialized demo set\n";
  }
  serve::ModelKind kind = serve::ModelKind::kCongestion;
  if (kind_name == "lookahead") {
    if (!models->lookahead) {
      std::cerr << "serve: model set has no look-ahead network\n";
      return 2;
    }
    kind = serve::ModelKind::kLookAhead;
  } else if (kind_name != "congestion") {
    std::cerr << "serve: unknown --kind '" << kind_name << "'\n";
    return 2;
  }

  const int channels = kind == serve::ModelKind::kCongestion
                           ? models->congestion->config().in_channels
                           : models->lookahead->config().frames *
                                 models->lookahead->config().channels_per_frame;
  // Synthetic request load: deterministic pseudo-random feature maps.
  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> uniform(0.0f, 1.0f);
  for (int r = 0; r < requests; ++r) {
    nn::Tensor t = nn::Tensor::zeros({1, channels, grid, grid});
    for (float& v : t.data()) v = uniform(rng);
    inputs.push_back(std::move(t));
  }

  // Single-threaded unbatched baseline.
  std::vector<nn::Tensor> baseline;
  baseline.reserve(inputs.size());
  Timer timer;
  {
    nn::NoGradGuard guard;
    for (const nn::Tensor& in : inputs) {
      baseline.push_back(kind == serve::ModelKind::kCongestion
                             ? models->congestion->forward(in)
                             : models->lookahead->forward(in).prediction);
    }
  }
  const double baseline_s = timer.seconds();

  // Service run: `clients` threads submit interleaved request ranges.
  std::vector<nn::Tensor> served(inputs.size());
  double service_s = 0.0;
  serve::ServiceCounters counters;
  std::vector<double> latencies;
  // --stats-every-ms N: periodic metric-registry dumps while the load
  // runs (the migrated "serve.*" counters/gauges/histograms).
  const int stats_every_ms = args.get_int("stats-every-ms", 0);
  serve::RouterCounters router_counters;
  {
    std::unique_ptr<serve::InferenceService> local_service;
    std::unique_ptr<serve::InferenceRouter> router;
    if (shards > 0) {
      serve::RouterConfig rc;
      rc.num_shards = shards;
      rc.shard = sc;
      // Throughput mode must not shed: the whole burst is in flight at
      // once, so the per-shard bound covers it unless overridden.
      rc.admission.queue_limit = static_cast<std::size_t>(
          std::max(1, args.get_int("queue-limit", std::max(requests, 256))));
      rc.admission.drain_width = sc.num_threads * std::max(1, sc.batcher.max_batch);
      router = std::make_unique<serve::InferenceRouter>(rc);
    } else {
      local_service = std::make_unique<serve::InferenceService>(sc);
    }
    std::atomic<bool> stats_stop{false};
    std::thread stats_thread;
    if (stats_every_ms > 0) {
      stats_thread = std::thread([&] {
        while (!stats_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stats_every_ms));
          if (stats_stop.load(std::memory_order_relaxed)) break;
          const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
          std::cout << "-- serve stats --\n"
                    << snap.to_string("serve.") << snap.to_string("plan.");
        }
      });
    }
    timer.reset();
    std::vector<std::thread> threads;
    std::vector<std::vector<std::pair<std::size_t, std::future<nn::Tensor>>>> futures(
        static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = static_cast<std::size_t>(c); i < inputs.size();
             i += static_cast<std::size_t>(clients)) {
          futures[static_cast<std::size_t>(c)].emplace_back(
              i, router ? router->submit(models, kind, inputs[i])
                        : local_service->submit(models, kind, inputs[i]));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (auto& per_client : futures) {
      for (auto& [i, f] : per_client) served[i] = f.get();
    }
    service_s = timer.seconds();
    if (router) {
      router->drain();  // futures resolve before the router's bookkeeping
      router_counters = router->counters();
      latencies = router->latency_snapshot_ms();
      for (int s = 0; s < router->num_shards(); ++s) {
        const serve::ServiceCounters shard = router->shard(s).counters();
        counters.requests += shard.requests;
        counters.completed += shard.completed;
        counters.batches += shard.batches;
        counters.batched_items += shard.batched_items;
      }
    } else {
      local_service->drain();  // futures resolve before the service's bookkeeping
      counters = local_service->counters();
      latencies = local_service->latency_snapshot_ms();
    }
    if (stats_thread.joinable()) {
      stats_stop.store(true, std::memory_order_relaxed);
      stats_thread.join();
    }
  }

  double max_err = 0.0;
  for (std::size_t i = 0; i < served.size(); ++i) {
    for (std::size_t k = 0; k < served[i].data().size(); ++k) {
      max_err = std::max(max_err, static_cast<double>(std::abs(
                                      served[i].data()[k] - baseline[i].data()[k])));
    }
  }

  const double base_rps = requests / std::max(1e-9, baseline_s);
  const double serve_rps = requests / std::max(1e-9, service_s);
  std::cout << "model: " << serve::to_string(kind) << " [" << channels << 'x' << grid << 'x'
            << grid << "], " << requests << " requests, " << clients << " clients\n"
            << "service: threads=" << sc.num_threads << " max_batch=" << sc.batcher.max_batch
            << " linger=" << sc.batcher.max_linger_ms << "ms"
            << (shards > 0 ? " shards=" + std::to_string(shards) : std::string()) << '\n';
  if (shards > 0) {
    std::cout << "router: " << router_counters.admitted << " admitted, "
              << router_counters.shed << " shed, " << router_counters.replicated_model_sets
              << " model set(s) replicated per shard\n";
  }
  std::cout
            << "baseline (1 thread, batch 1): " << base_rps << " req/s\n"
            << "service: " << serve_rps << " req/s (" << serve_rps / base_rps
            << "x), mean batch " << counters.mean_batch_size() << " over " << counters.batches
            << " batches\n"
            << "latency ms: p50 " << serve::percentile(latencies, 50.0) << ", p99 "
            << serve::percentile(latencies, 99.0) << "\n"
            << "batched vs sequential max |diff|: " << max_err << '\n'
            << "-- serve stats (final) --\n";
  const obs::MetricsSnapshot final_snap = obs::MetricRegistry::global().snapshot();
  std::cout << final_snap.to_string("serve.") << final_snap.to_string("plan.");
  return max_err <= 1e-5 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  try {
    const int armed = FailpointRegistry::instance().configure_from_env();
    if (armed > 0) std::cerr << "laco: " << armed << " failpoint(s) armed from env\n";
  } catch (const std::exception& e) {
    std::cerr << "laco: bad LACO_FAILPOINTS spec: " << e.what() << '\n';
    return 2;
  }
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "place") return cmd_place(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "train") return cmd_train(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "plan-verify") return cmd_plan_verify(args);
  } catch (const std::exception& e) {
    std::cerr << "laco " << command << ": " << e.what() << '\n';
    return 1;
  }
  return usage();
}
