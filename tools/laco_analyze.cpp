// laco-analyze CLI — second-generation, token-aware static analysis
// (tools/analyze_core.hpp, docs/STATIC_ANALYSIS.md). Registered as the
// tier-1 `laco_analyze` ctest gate, so `ctest` fails on any layer-DAG
// break, include cycle, unused project include, unlocked
// LACO_GUARDED_BY access, Tensor-by-value parameter, or unordered
// accumulation inside a LACO_DETERMINISTIC region.
//
// Usage:
//   laco-analyze --root DIR [options] [relpath...]
//     --root DIR      repository root (default: current directory)
//     --no-file       skip the per-file token rules
//     --no-tree       skip the include-graph rules (layer DAG, cycles, IWYU)
//     relpath...      run only the per-file rules on these files
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyze_core.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " --root DIR [--no-file] [--no-tree] [relpath...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  laco::analyze::Options options;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      root = v;
    } else if (arg == "--no-file") {
      options.file_rules = false;
    } else if (arg == "--no-tree") {
      options.tree_rules = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      explicit_files.push_back(arg);
    }
  }

  std::vector<laco::analyze::Diagnostic> diagnostics;
  try {
    if (explicit_files.empty()) {
      diagnostics = laco::analyze::analyze_tree(root, options);
    } else {
      for (const std::string& rel : explicit_files) {
        auto file_diags =
            laco::analyze::analyze_file(std::filesystem::path(root) / rel, rel, root);
        diagnostics.insert(diagnostics.end(), file_diags.begin(), file_diags.end());
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "laco-analyze: " << e.what() << '\n';
    return 2;
  }

  for (const auto& d : diagnostics) std::cout << d.str() << '\n';
  if (!diagnostics.empty()) {
    std::cerr << "laco-analyze: " << diagnostics.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
