#include "lint_core.hpp"

#include "analyze_core.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <thread>

#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace laco::lint {
namespace {

namespace fs = std::filesystem;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& relpath) {
  return ends_with(relpath, ".hpp") || ends_with(relpath, ".h");
}

bool is_source(const std::string& relpath) {
  return ends_with(relpath, ".cpp") || ends_with(relpath, ".cc");
}

std::string read_file(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("laco-lint: cannot read " + file.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// Rule scopes. A relpath is the root-relative path with '/' separators.
bool in_src(const std::string& p) { return starts_with(p, "src/"); }
bool in_tests(const std::string& p) { return starts_with(p, "tests/"); }
bool in_serve_source(const std::string& p) { return starts_with(p, "src/serve/") && is_source(p); }
// The plan executor hot path (docs/PLAN.md): every per-forward
// allocation there defeats the arena design, so allocating constructs
// are banned outright; preallocation belongs in Workspace::prepare.
bool in_plan_hot_path(const std::string& p) {
  return starts_with(p, "src/plan/") && p.find("executor") != std::string::npos;
}
// Fault-handling layers (docs/RELIABILITY.md): the serving stack and
// the placement flow, where a silently swallowed exception turns into
// a hung future or a placement that skips its penalty without a trace.
bool in_fault_scope(const std::string& p) {
  return starts_with(p, "src/serve/") || starts_with(p, "src/laco/");
}

bool iostream_exempt(const std::string& p) {
  // util/logging owns the terminal; tools and bench are end-user
  // programs whose stdout IS the product (CSV tables, CLI output).
  return starts_with(p, "tools/") || starts_with(p, "bench/") ||
         starts_with(p, "src/util/logging");
}

bool rand_exempt(const std::string& p) { return starts_with(p, "src/util/rng"); }
bool mutex_rule_exempt(const std::string& p) {
  // util/mutex.hpp wraps the raw std::mutex everything else annotates.
  return p == "src/util/mutex.hpp";
}

void add(std::vector<Diagnostic>& out, const std::string& relpath, int line,
         const char* rule, const std::string& message) {
  Diagnostic d;
  d.relpath = relpath;
  d.line = line;
  d.rule = rule;
  d.message = message;
  out.push_back(std::move(d));
}

// Patterns are spliced ("as" "sert") so laco-lint never flags its own
// source: string literals are stripped before matching, but keeping the
// tokens out of this file entirely is cheap insurance.
const std::regex& assert_re() {
  static const std::regex re("(^|[^A-Za-z0-9_])as" "sert\\s*\\(");
  return re;
}
const std::regex& new_re() {
  static const std::regex re("(^|[^A-Za-z0-9_])n" "ew[^A-Za-z0-9_]");
  return re;
}
const std::regex& delete_re() {
  static const std::regex re("(^|[^A-Za-z0-9_])del" "ete([^A-Za-z0-9_]|$)");
  return re;
}
const std::regex& rand_re() {
  static const std::regex re("(^|[^A-Za-z0-9_])s?ra" "nd\\s*\\(");
  return re;
}
const std::regex& iostream_re() {
  static const std::regex re("std::c" "(out|err)[^A-Za-z0-9_]");
  return re;
}
const std::regex& mutex_member_re() {
  static const std::regex re("^\\s*(mutable\\s+)?(std::mu" "tex|laco::Mutex|Mutex)\\s+[A-Za-z_][A-Za-z0-9_]*\\s*;");
  return re;
}
const std::regex& forward_call_re() {
  static const std::regex re("(->|\\.)\\s*forward\\s*\\(");
  return re;
}
const std::regex& catch_all_re() {
  static const std::regex re("(^|[^A-Za-z0-9_])ca" "tch\\s*\\(\\s*\\.\\.\\.\\s*\\)");
  return re;
}
const std::regex& plan_alloc_re() {
  static const std::regex re(
      "Tensor::(ze" "ros|fu" "ll|from" "_data|sca" "lar)\\s*\\(|"
      "make_sh" "ared|make_un" "ique|"
      "(^|[^A-Za-z0-9_])(push_b" "ack|emplace_b" "ack|res" "ize|res" "erve)\\s*\\(");
  return re;
}

/// `= delete;` (deleted special members) is not memory management.
bool is_deleted_function(const std::string& line, std::size_t match_pos) {
  for (std::size_t i = match_pos; i-- > 0;) {
    const char c = line[i];
    if (c == ' ' || c == '\t') continue;
    return c == '=';
  }
  return false;
}

// Runs on stripped text so a comment merely mentioning the directive
// does not satisfy the rule.
void check_pragma_once(const std::string& stripped, const std::string& relpath,
                       std::vector<Diagnostic>& out) {
  static const std::regex pragma_re("#\\s*pragma\\s+once");
  if (!std::regex_search(stripped, pragma_re)) {
    add(out, relpath, 1, "pragma-once", "header must use '#pragma once'");
  }
}

void check_line_rules(const std::vector<std::string>& lines, const std::string& relpath,
                      std::vector<Diagnostic>& out) {
  const bool src = in_src(relpath);
  const bool check_iostream = (src || in_tests(relpath)) && !iostream_exempt(relpath);
  const bool check_rand = !rand_exempt(relpath);
  const bool hot_path = in_plan_hot_path(relpath);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const int lineno = static_cast<int>(i) + 1;
    std::smatch m;
    if (hot_path && std::regex_search(line, m, plan_alloc_re())) {
      add(out, relpath, lineno, "plan-hot-alloc",
          "no allocations in the plan executor hot path: Tensor factories, make_shared/"
          "make_unique, and container growth belong in Workspace::prepare (docs/PLAN.md)");
    }
    if (src && std::regex_search(line, m, assert_re())) {
      add(out, relpath, lineno, "bare-assert",
          "use LACO_CHECK/LACO_DCHECK (util/check.hpp); bare asserts vanish under NDEBUG");
    }
    if (src && std::regex_search(line, m, new_re())) {
      add(out, relpath, lineno, "naked-new",
          "use std::make_unique/std::make_shared or containers instead of naked allocation");
    }
    if (src && std::regex_search(line, m, delete_re()) &&
        !is_deleted_function(line, static_cast<std::size_t>(m.position(0)))) {
      add(out, relpath, lineno, "naked-new",
          "use RAII owners instead of manual deallocation");
    }
    if (check_rand && std::regex_search(line, m, rand_re())) {
      add(out, relpath, lineno, "rand",
          "use util/rng.hpp (seeded, reproducible) instead of the C PRNG");
    }
    if (check_iostream && std::regex_search(line, m, iostream_re())) {
      add(out, relpath, lineno, "iostream",
          "use util/logging.hpp (LACO_LOG_*) for library output");
    }
  }
}

void check_mutex_guarded(const std::vector<std::string>& lines, const std::string& stripped,
                         const std::string& relpath, std::vector<Diagnostic>& out) {
  if (!in_src(relpath) || !is_header(relpath) || mutex_rule_exempt(relpath)) return;
  const bool has_guard = stripped.find("LACO_GUARDED_BY(") != std::string::npos;
  if (has_guard) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], mutex_member_re())) {
      add(out, relpath, static_cast<int>(i) + 1, "mutex-guard",
          "mutex member without any LACO_GUARDED_BY annotation in this header");
    }
  }
}

/// Brace-depth scan: every model forward in src/serve must execute
/// under an nn::NoGradGuard in an enclosing scope (tensor.hpp
/// concurrency contract — grad recording on shared weights is a race).
void check_nograd_forward(const std::vector<std::string>& lines, const std::string& relpath,
                          std::vector<Diagnostic>& out) {
  if (!in_serve_source(relpath)) return;
  int depth = 0;
  std::vector<int> guard_depths;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("NoGradGuard") != std::string::npos) guard_depths.push_back(depth);
    if (std::regex_search(line, forward_call_re()) && guard_depths.empty()) {
      add(out, relpath, static_cast<int>(i) + 1, "nograd-forward",
          "model forward() in src/serve must run under nn::NoGradGuard");
    }
    for (const char c : line) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
    while (!guard_depths.empty() && depth < guard_depths.back()) guard_depths.pop_back();
  }
}

/// Brace-matched scan over the stripped text: a `catch (...)` in the
/// fault-handling layers must visibly do something with the exception —
/// rethrow, log, or forward it into a promise/batch — or it swallows a
/// fault the reliability machinery (retries, breakers, degradation)
/// exists to surface. Runs on stripped text, so a marker inside a
/// comment or string does not satisfy the rule.
void check_catch_swallow(const std::string& stripped, const std::string& relpath,
                         std::vector<Diagnostic>& out) {
  if (!in_fault_scope(relpath)) return;
  static const char* const kHandlingMarkers[] = {
      "throw",              // rethrow / throw-new / std::rethrow_exception
      "LACO_LOG_",          // at minimum, the fault leaves a trace
      "set_exception",      // forwarded into a promise
      "fail_batch",         // forwarded into a batch's promises
      "current_exception",  // captured for later propagation
      "abort",              // deliberate crash is not a swallow
  };
  const auto end = std::sregex_iterator();
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), catch_all_re());
       it != end; ++it) {
    const std::size_t match_pos = static_cast<std::size_t>(it->position(0));
    const std::size_t open = stripped.find('{', match_pos + static_cast<std::size_t>(it->length(0)));
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < stripped.size(); ++close) {
      if (stripped[close] == '{') ++depth;
      if (stripped[close] == '}' && --depth == 0) break;
    }
    const std::string block = stripped.substr(open, close - open + 1);
    const bool handled = std::any_of(std::begin(kHandlingMarkers), std::end(kHandlingMarkers),
                                     [&block](const char* marker) {
                                       return block.find(marker) != std::string::npos;
                                     });
    if (handled) continue;
    // Group 1 is the non-identifier prefix (possibly a newline): count
    // lines up to the keyword itself, not the character before it.
    const std::size_t keyword_pos = match_pos + static_cast<std::size_t>((*it)[1].length());
    const int lineno = 1 + static_cast<int>(std::count(
                               stripped.begin(),
                               stripped.begin() + static_cast<std::ptrdiff_t>(keyword_pos), '\n'));
    add(out, relpath, lineno, "catch-swallow",
        "catch (...) in src/serve//src/laco must rethrow, log (LACO_LOG_*), or forward the "
        "exception (set_exception/fail_batch); swallowed faults defeat the reliability layer");
  }
}

/// Compiles `header` standalone (-fsyntax-only) to prove it includes
/// what it uses. Returns the compiler exit status.
int compile_header(const std::string& cxx, const std::string& flags, const fs::path& header,
                   const fs::path& scratch_dir, std::size_t index) {
  const fs::path tu = scratch_dir / ("header_" + std::to_string(index) + ".cpp");
  {
    std::ofstream out(tu);
    out << "#include \"" << header.generic_string() << "\"\n";
  }
  const std::string command =
      cxx + " " + flags + " -fsyntax-only " + tu.string() + " > /dev/null 2>&1";
  return std::system(command.c_str());
}

}  // namespace

std::string Diagnostic::str() const {
  return relpath + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::string strip_comments_and_strings(const std::string& source) {
  // Delegates to the laco-analyze tokenizer (tools/analyze_core.hpp):
  // the shared stripper handles raw strings R"( … )" and
  // backslash-newline-spliced literals with exact line preservation,
  // and blanks preprocessor continuation lines so multi-line macro
  // bodies never trip per-line rules. Fixture tests in
  // tests/test_lint.cpp pin the exact output.
  return analyze::strip_for_line_rules(source);
}

std::vector<Diagnostic> lint_file(const fs::path& file, const std::string& relpath,
                                  const Options& options) {
  std::vector<Diagnostic> out;
  if (!options.text_rules) return out;
  const std::string raw = read_file(file);
  const std::string stripped = strip_comments_and_strings(raw);
  const std::vector<std::string> lines = split_lines(stripped);
  if (is_header(relpath)) check_pragma_once(stripped, relpath, out);
  check_line_rules(lines, relpath, out);
  check_mutex_guarded(lines, stripped, relpath, out);
  check_nograd_forward(lines, relpath, out);
  check_catch_swallow(stripped, relpath, out);
  std::stable_sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.line < b.line;
  });
  return out;
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "tests", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir); it != fs::recursive_directory_iterator();
         ++it) {
      // Fixture trees (lint_fixtures/, analyze_fixtures/, ...) violate
      // rules on purpose; they are driven explicitly by their tests.
      const std::string dirname = it->is_directory() ? it->path().filename().string() : "";
      if (it->is_directory() && dirname.size() >= 9 &&
          dirname.compare(dirname.size() - 9, 9, "_fixtures") == 0) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string rel = fs::relative(it->path(), root).generic_string();
      if (is_header(rel) || is_source(rel)) files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> check_tests_registered(const fs::path& root,
                                               const std::vector<std::string>& files) {
  std::vector<Diagnostic> out;
  const fs::path cmake_list = root / "tests" / "CMakeLists.txt";
  if (!fs::exists(cmake_list)) return out;
  const std::string cmake = read_file(cmake_list);
  for (const std::string& rel : files) {
    if (rel.rfind("tests/test_", 0) != 0 || rel.find('/', 6) != std::string::npos) continue;
    if (rel.size() < 4 || rel.compare(rel.size() - 4, 4, ".cpp") != 0) continue;
    const std::string stem = rel.substr(6, rel.size() - 6 - 4);  // "test_*"
    const std::regex registered("laco_add_test\\s*\\(\\s*" + stem + "\\s*\\)");
    if (!std::regex_search(cmake, registered)) {
      add(out, rel, 1, "test-registered",
          "register it with laco_add_test(" + stem +
              ") in tests/CMakeLists.txt — unregistered tests never run");
    }
  }
  return out;
}

std::vector<Diagnostic> lint_tree(const fs::path& root, const Options& options) {
  const std::vector<std::string> files = collect_files(root);
  std::vector<Diagnostic> out;
  for (const std::string& rel : files) {
    std::vector<Diagnostic> file_diags = lint_file(root / rel, rel, options);
    out.insert(out.end(), file_diags.begin(), file_diags.end());
  }
  if (options.text_rules) {
    std::vector<Diagnostic> reg = check_tests_registered(root, files);
    out.insert(out.end(), reg.begin(), reg.end());
  }

  if (options.check_self_contained) {
    const std::string cxx = options.cxx.empty() ? "c++" : options.cxx;
    std::string flags = options.cxx_flags;
    if (flags.empty()) flags = "-std=c++20 -I " + (root / "src").string();
    const fs::path scratch =
        fs::temp_directory_path() / ("laco_lint_" + std::to_string(::getpid()));
    fs::create_directories(scratch);

    std::vector<std::string> headers;
    for (const std::string& rel : files) {
      if (is_header(rel)) headers.push_back(rel);
    }
    const int jobs = options.jobs > 0
                         ? options.jobs
                         : std::max(1u, std::thread::hardware_concurrency());
    Mutex mutex;
    std::vector<Diagnostic> failures;  // guarded by `mutex` (local, so no attribute)
    {
      ThreadPool pool(jobs, headers.size() + 1);
      for (std::size_t i = 0; i < headers.size(); ++i) {
        const std::string rel = headers[i];
        pool.submit([&, rel, i] {
          const int status = compile_header(cxx, flags, root / rel, scratch, i);
          if (status != 0) {
            MutexLock lock(mutex);
            add(failures, rel, 1, "self-contained",
                "header does not compile standalone (missing includes?)");
          }
        });
      }
      pool.shutdown();
    }
    std::error_code ec;
    fs::remove_all(scratch, ec);
    std::sort(failures.begin(), failures.end(),
              [](const Diagnostic& a, const Diagnostic& b) { return a.relpath < b.relpath; });
    out.insert(out.end(), failures.begin(), failures.end());
  }
  return out;
}

}  // namespace laco::lint
