// laco-lint — project-invariant linter for the LACO tree. The rules
// encode contracts the compiler cannot express and review keeps
// forgetting; each is registered as a tier-1 ctest so `ctest` fails on
// violations (see docs/STATIC_ANALYSIS.md for the rule catalogue and
// the suppression policy).
//
// This header is the library half: tools/laco_lint.cpp wraps it in a
// CLI, tests/test_lint.cpp drives it over fixture files and asserts
// the exact diagnostics.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace laco::lint {

struct Diagnostic {
  std::string relpath;  ///< root-relative, '/' separators
  int line = 1;
  std::string rule;     ///< stable id, e.g. "bare-assert"
  std::string message;

  /// Canonical rendering: "path:line: [rule] message".
  std::string str() const;
};

struct Options {
  bool text_rules = true;           ///< the per-file textual rules below
  bool check_self_contained = false;  ///< compile each header standalone
  std::string cxx;                  ///< compiler for self-contained checks
  std::string cxx_flags;            ///< e.g. "-std=c++20 -I /repo/src"
  int jobs = 0;                     ///< parallel header compiles; 0 = auto
};

/// Strips //, /* */ comments and string/char literals, preserving line
/// structure, so rule patterns never match inside prose or literals.
std::string strip_comments_and_strings(const std::string& source);

/// Runs the textual rules on one file. `relpath` decides scope (e.g.
/// bare-assert only fires under src/); the file itself may live
/// anywhere, which is how the fixture tests exercise scoped rules.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file, const std::string& relpath,
                                  const Options& options = {});

/// Tree rule "test-registered": every tests/test_*.cpp among `files`
/// (root-relative paths) must appear as laco_add_test(<stem>) in
/// tests/CMakeLists.txt under `root` — an unregistered test compiles
/// nowhere and silently never runs in CI. No-op when the CMake list is
/// absent (fixture trees).
std::vector<Diagnostic> check_tests_registered(const std::filesystem::path& root,
                                               const std::vector<std::string>& files);

/// Root-relative paths of every C++ file the tree walk visits:
/// src/ tests/ tools/ bench/, skipping lint_fixtures/ (rule-violating
/// test inputs) and anything that is not .hpp/.h/.cpp/.cc.
std::vector<std::string> collect_files(const std::filesystem::path& root);

/// Lints the whole tree under `root` per `options` (textual rules
/// and/or self-contained header compiles), diagnostics sorted by path.
std::vector<Diagnostic> lint_tree(const std::filesystem::path& root, const Options& options = {});

}  // namespace laco::lint
