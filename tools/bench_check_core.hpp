// Library half of laco-bench-check (tools/laco_bench_check.cpp is the
// CLI shell): compares every numeric headline metric of a `current`
// laco-bench JSON report against a `baseline` and reports relative
// drift. Factored out so tests/test_bench_check.cpp can drive the
// exact argv/exit-code contract without spawning processes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace laco::benchcheck {

/// Runs the full laco-bench-check CLI against `args` (argv[1..]),
/// writing the drift table to `out` and errors to `err`. Flags:
///
///   <current.json> <baseline.json>   the two reports (positional)
///   --max-drift PCT                  threshold, default 25
///   --strict                         exit 1 when any metric is flagged
///   --metric KEY                     repeatable; only compare these
///                                    baseline metrics (a KEY missing
///                                    from the baseline is itself
///                                    flagged — a gate must not pass
///                                    vacuously)
///
/// Returns the process exit status: 2 on usage errors or
/// unreadable/schema-invalid reports, 1 with --strict when any metric
/// drifts past the threshold (or is missing), else 0.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace laco::benchcheck
