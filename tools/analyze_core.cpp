#include "analyze_core.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace laco::analyze {
namespace {

namespace fs = std::filesystem;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& relpath) {
  return ends_with(relpath, ".hpp") || ends_with(relpath, ".h");
}

bool is_source(const std::string& relpath) {
  return ends_with(relpath, ".cpp") || ends_with(relpath, ".cc");
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

std::string read_file(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("laco-analyze: cannot read " + file.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void add(std::vector<Diagnostic>& out, const std::string& relpath, int line, const char* rule,
         const std::string& message) {
  Diagnostic d;
  d.relpath = relpath;
  d.line = line;
  d.rule = rule;
  d.message = message;
  out.push_back(std::move(d));
}

// ------------------------------------------------------------ stripping

/// True when the '"' at `i` opens a raw string literal: R"…, u8R"…,
/// uR"…, UR"…, LR"… with no identifier character glued before the
/// prefix (so `FOUR"x"` is not one).
bool is_raw_string_start(const std::string& s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // index of 'R'
  if (p >= 2 && s[p - 2] == 'u' && s[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (s[p - 1] == 'u' || s[p - 1] == 'U' || s[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !is_ident_char(s[p - 1]);
}

struct CommentNote {
  int line;
  std::string text;
};

/// The shared stripping pass. Emits a line-structure-preserving copy
/// of `source` with comments and every literal kind blanked; collects
/// the comment texts so marker comments (LACO_DETERMINISTIC,
/// analyze-ok) survive the strip.
std::string strip_impl(const std::string& source, std::vector<CommentNote>* comments) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  std::string out;
  out.reserve(source.size());
  State state = State::kCode;
  int line = 1;
  std::string comment_text;
  int comment_line = 1;
  const auto flush_comment = [&]() {
    if (comments != nullptr && !comment_text.empty()) {
      comments->push_back(CommentNote{comment_line, comment_text});
    }
    comment_text.clear();
  };
  // Tracks pp-number context so the C++14 digit separator in 50'000
  // is not mistaken for a char-literal opening quote.
  bool in_number = false;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    if (state == State::kCode) {
      if (in_number) {
        const bool separator =
            c == '\'' && (is_ident_char(next) || (next >= '0' && next <= '9'));
        if (!is_ident_char(c) && c != '.' && !separator) in_number = false;
      } else if (c >= '0' && c <= '9') {
        const char prev = i > 0 ? source[i - 1] : '\0';
        if (!is_ident_char(prev) && prev != '.') in_number = true;
      }
    } else {
      in_number = false;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          out += "  ";
          ++i;
        } else if (c == '"' && is_raw_string_start(source, i)) {
          // Raw string: R"delim( … )delim". Blank everything between
          // the quotes, keeping newlines so line numbers stay exact.
          std::size_t j = i + 1;
          std::string delim;
          while (j < source.size() && source[j] != '(' && delim.size() <= 16) {
            delim += source[j];
            ++j;
          }
          const std::string closer = ")" + delim + "\"";
          const std::size_t close = source.find(closer, j);
          const std::size_t end =
              close == std::string::npos ? source.size() : close + closer.size();
          for (std::size_t k = i; k < end; ++k) {
            if (source[k] == '\n') {
              out += '\n';
              ++line;
            } else {
              out += ' ';
            }
          }
          i = end - 1;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && !in_number) {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
          if (c == '\n') ++line;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          flush_comment();
          out += '\n';
          ++line;
        } else {
          comment_text += c;
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          flush_comment();
          out += "  ";
          ++i;
        } else {
          comment_text += c;
          if (c == '\n') {
            out += '\n';
            ++line;
          } else {
            out += ' ';
          }
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next == '\n') {
          // Spliced literal: the escape continues the literal on the
          // next physical line. Keep the newline (line numbers!).
          out += " \n";
          ++line;
          ++i;
        } else if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else if (c == '\n') {
          // Unterminated literal on this line (or a multi-line string
          // in broken input): fail open, back to code.
          out += '\n';
          ++line;
        } else {
          out += ' ';
        }
        break;
    }
  }
  flush_comment();
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool line_is_directive_start(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

bool line_continues(const std::string& line) {
  for (std::size_t i = line.size(); i-- > 0;) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '\\';
  }
  return false;
}

/// Marks every line (0-based) that belongs to a preprocessor
/// directive; `continuation` additionally marks only the spliced
/// follow-on lines.
void mark_directive_lines(const std::vector<std::string>& lines, std::vector<bool>& directive,
                          std::vector<bool>& continuation) {
  directive.assign(lines.size(), false);
  continuation.assign(lines.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!line_is_directive_start(lines[i])) continue;
    directive[i] = true;
    std::size_t j = i;
    while (j < lines.size() && line_continues(lines[j]) && j + 1 < lines.size()) {
      ++j;
      directive[j] = true;
      continuation[j] = true;
    }
    i = j;
  }
}

// ------------------------------------------------------------- lexing

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",     "bool",     "break",    "case",      "catch",
      "char",     "class",    "const",    "constexpr", "continue", "decltype", "default",
      "delete",   "do",       "double",   "else",     "enum",     "explicit",  "extern",
      "false",    "final",    "float",    "for",      "friend",   "goto",      "if",
      "inline",   "int",      "long",     "mutable",  "namespace", "new",      "noexcept",
      "nullptr",  "operator", "override", "private",  "protected", "public",   "return",
      "short",    "signed",   "sizeof",   "static",   "struct",   "switch",    "template",
      "this",     "throw",    "true",     "try",      "typedef",  "typename",  "union",
      "unsigned", "using",    "virtual",  "void",     "volatile", "while"};
  return kw;
}

void lex(const std::vector<std::string>& lines, const std::vector<bool>& skip_line,
         std::vector<Token>& out) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (skip_line[li]) continue;
    const std::string& line = lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\\') {
        ++i;
        continue;
      }
      Token t;
      t.line = lineno;
      if (is_ident_char(c) && !(c >= '0' && c <= '9')) {
        std::size_t j = i;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        t.kind = Token::Kind::kIdentifier;
        t.text = line.substr(i, j - i);
        i = j;
      } else if (c >= '0' && c <= '9') {
        std::size_t j = i;
        while (j < line.size() &&
               (is_ident_char(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        t.kind = Token::Kind::kNumber;
        t.text = line.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::Kind::kPunct;
        const char next = i + 1 < line.size() ? line[i + 1] : '\0';
        if ((c == ':' && next == ':') || (c == '-' && next == '>')) {
          t.text = std::string(1, c) + next;
          i += 2;
        } else {
          t.text = std::string(1, c);
          ++i;
        }
      }
      out.push_back(std::move(t));
    }
  }
}

// --------------------------------------------------------- layer model

/// Direct layer dependencies, mirroring the target_link_libraries graph
/// in src/CMakeLists.txt. "flows" is the virtual layer of the
/// routability-driven sources that live under src/placer/ but sit above
/// the router (laco_flows).
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"util", {}},
      {"obs", {"util"}},
      {"gridmap", {"util"}},
      {"netlist", {"util", "gridmap"}},
      {"features", {"netlist", "gridmap"}},
      {"metrics", {"gridmap", "netlist"}},
      {"nn", {"util", "obs"}},
      {"plan", {"nn", "obs"}},
      {"models", {"nn", "gridmap", "features"}},
      {"placer", {"netlist", "features", "gridmap", "obs"}},
      {"router", {"netlist", "gridmap", "placer", "metrics"}},
      {"flows", {"placer", "router"}},
      {"train", {"models", "placer", "router", "flows", "metrics", "nn"}},
      {"laco", {"train", "plan"}},
      {"serve", {"laco", "plan"}},
  };
  return deps;
}

/// Reflexive-transitive closure of layer_deps(), computed once. Also
/// proves the declared graph is a DAG: a cycle would make the closure
/// contain X in closure(X) via a non-trivial path, which the assertion
/// below would catch at first use.
const std::map<std::string, std::set<std::string>>& layer_closure() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    std::function<const std::set<std::string>&(const std::string&)> resolve =
        [&](const std::string& layer) -> const std::set<std::string>& {
      auto it = out.find(layer);
      if (it != out.end()) return it->second;
      std::set<std::string>& mine = out[layer];
      mine.insert(layer);
      const auto dep_it = layer_deps().find(layer);
      if (dep_it != layer_deps().end()) {
        for (const std::string& d : dep_it->second) {
          const std::set<std::string>& sub = resolve(d);
          mine.insert(sub.begin(), sub.end());
        }
      }
      return mine;
    };
    for (const auto& [layer, _] : layer_deps()) resolve(layer);
    return out;
  }();
  return closure;
}

// ----------------------------------------------------- rule scaffolding

bool in_src(const std::string& p) { return starts_with(p, "src/"); }

bool suppressed(const TokenizedFile& tf, int line, const char* rule) {
  const auto it = tf.suppressions.find(line);
  return it != tf.suppressions.end() && it->second.count(rule) > 0;
}

// ------------------------------------------------------ tensor-by-value

void check_tensor_by_value(const TokenizedFile& tf, const std::string& relpath,
                           std::vector<Diagnostic>& out) {
  if (!in_src(relpath)) return;
  const std::vector<Token>& t = tf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "Tensor" || t[i].kind != Token::Kind::kIdentifier) continue;
    // Optional nn:: qualification.
    std::size_t first = i;
    if (first >= 2 && t[first - 1].text == "::" && t[first - 2].text == "nn") first -= 2;
    if (first == 0) continue;
    std::size_t prev = first - 1;
    if (t[prev].text == "const") {
      if (prev == 0) continue;
      --prev;
    }
    // A parameter starts right after '(' or ','.
    if (t[prev].text != "(" && t[prev].text != ",") continue;
    if (i + 2 >= t.size()) continue;
    const Token& name = t[i + 1];
    const Token& after = t[i + 2];
    if (name.kind != Token::Kind::kIdentifier || keywords().count(name.text) > 0) continue;
    if (after.text != "," && after.text != ")" && after.text != "=") continue;
    if (suppressed(tf, t[i].line, "tensor-by-value")) continue;
    add(out, relpath, t[i].line, "tensor-by-value",
        "parameter '" + name.text +
            "' takes nn::Tensor by value (one shared-impl copy per call); pass const "
            "Tensor& — or, for an intentional sink parameter, add // "
            "analyze-ok(tensor-by-value)");
  }
}

// ------------------------------------------------- nondeterministic-accum

void check_deterministic_regions(const TokenizedFile& tf, const std::string& relpath,
                                 std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = tf.tokens;
  for (const int mark_line : tf.deterministic_marks) {
    // The region is the first brace block opening at or after the
    // marker (a loop body or function body); to end of file if none.
    std::size_t begin = t.size();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].line >= mark_line && t[i].text == "{") {
        begin = i;
        break;
      }
    }
    std::size_t end = t.size();
    if (begin < t.size()) {
      int depth = 0;
      for (std::size_t i = begin; i < t.size(); ++i) {
        if (t[i].text == "{") ++depth;
        if (t[i].text == "}" && --depth == 0) {
          end = i;
          break;
        }
      }
    } else {
      begin = 0;  // marker after the last brace: scan the tail
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].line >= mark_line) {
          begin = i;
          break;
        }
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (suppressed(tf, t[i].line, "nondeterministic-accum")) continue;
      if (t[i].text == "fetch_add" || t[i].text == "fetch_sub") {
        add(out, relpath, t[i].line, "nondeterministic-accum",
            "atomic " + t[i].text +
                " inside a LACO_DETERMINISTIC region: cross-thread accumulation order is "
                "unspecified — use per-shard partial sums reduced in index order");
      } else if (t[i].text == "atomic" && i + 2 < end && t[i + 1].text == "<" &&
                 (t[i + 2].text == "float" || t[i + 2].text == "double")) {
        add(out, relpath, t[i].line, "nondeterministic-accum",
            "std::atomic<" + t[i + 2].text +
            "> inside a LACO_DETERMINISTIC region: floating-point accumulation through an "
            "atomic is unordered — use per-shard partial sums reduced in index order");
      } else if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
        add(out, relpath, t[i].line, "nondeterministic-accum",
            "reduction over std::" + t[i].text +
                " inside a LACO_DETERMINISTIC region: iteration order is unspecified — use a "
                "sorted container or index-ordered loop");
      }
    }
  }
}

// --------------------------------------------------------- guarded-access

struct GuardInfo {
  std::set<std::string> guarded_fields;
  std::set<std::string> requires_methods;  ///< declared with LACO_REQUIRES
};

void harvest_guards(const TokenizedFile& tf, GuardInfo& info) {
  const std::vector<Token>& t = tf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "LACO_GUARDED_BY" && i > 0 &&
        t[i - 1].kind == Token::Kind::kIdentifier) {
      info.guarded_fields.insert(t[i - 1].text);
    }
    if (t[i].text == "LACO_REQUIRES" && i > 0) {
      // … NAME ( params ) [const|noexcept|override]* LACO_REQUIRES
      std::size_t j = i - 1;
      while (j > 0 && (t[j].text == "const" || t[j].text == "noexcept" ||
                       t[j].text == "override" || t[j].text == "final")) {
        --j;
      }
      if (t[j].text != ")") continue;
      int depth = 1;
      while (j > 0 && depth > 0) {
        --j;
        if (t[j].text == ")") ++depth;
        if (t[j].text == "(") --depth;
      }
      if (j > 0 && t[j - 1].kind == Token::Kind::kIdentifier) {
        info.requires_methods.insert(t[j - 1].text);
      }
    }
  }
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> types = {"MutexLock", "lock_guard", "unique_lock",
                                              "scoped_lock"};
  return types;
}

/// Finds the '(' that matches the ')' at `close`; returns npos-like
/// t.size() on failure.
std::size_t match_paren_back(const std::vector<Token>& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (t[i].text == ")") ++depth;
    if (t[i].text == "(") {
      if (--depth == 0) return i;
    }
    if (i == 0) break;
  }
  return t.size();
}

/// True when the ')' ending at `close` belongs to a constructor
/// definition, i.e. `Name :: Name ( … )` (possibly reached by walking
/// back through a member-initializer list).
bool paren_is_ctor(const std::vector<Token>& t, std::size_t close) {
  std::size_t open = match_paren_back(t, close);
  for (int hops = 0; hops < 64; ++hops) {
    if (open >= t.size() || open == 0) return false;
    const std::size_t name = open - 1;
    if (t[name].kind == Token::Kind::kIdentifier) {
      if (name >= 2 && t[name - 1].text == "::" && t[name - 2].text == t[name].text) {
        return true;  // Name::Name(…)
      }
      if (name >= 1 && t[name - 1].text == "~") return true;  // destructor
    }
    // Member-initializer item: walk back over `, field(…)` / `: field(…)`
    // to the parameter list of the constructor itself.
    if (name == 0) return false;
    const std::size_t before = name - 1;
    if (t[before].text == ",") {
      // previous init item ends with ')' just before the ','… no: the
      // ',' separates items, the previous item's ')' is at before-1.
      if (before == 0 || t[before - 1].text != ")") return false;
      open = match_paren_back(t, before - 1);
      // loop: inspect that item's name and keep walking.
      continue;
    }
    if (t[before].text == ":") {
      if (before == 0 || t[before - 1].text != ")") return false;
      return paren_is_ctor(t, before - 1);
    }
    return false;
  }
  return false;
}

/// Lock-discipline scan over one src/ .cpp: occurrences of guarded
/// field names inside a function body must be covered by a live
/// MutexLock in an enclosing scope or a LACO_REQUIRES-annotated
/// method. Constructors/destructors are exempt (no concurrency before
/// the object escapes).
void check_guarded_access(const TokenizedFile& tf, const GuardInfo& info,
                          const std::string& relpath, std::vector<Diagnostic>& out) {
  if (!in_src(relpath) || !is_source(relpath) || info.guarded_fields.empty()) return;
  const std::vector<Token>& t = tf.tokens;
  struct Scope {
    bool function = false;  ///< this '{' opened a function body
    bool exempt = false;    ///< ctor/dtor or LACO_REQUIRES method
  };
  std::vector<Scope> scopes;
  std::vector<std::size_t> lock_depths;  // scope depth at MutexLock declaration
  int function_depth = 0;                // nesting count of function-body scopes
  int exempt_depth = 0;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& text = t[i].text;
    if (text == "{") {
      Scope s;
      if (i > 0) {
        std::size_t p = i - 1;
        while (p > 0 && (t[p].text == "const" || t[p].text == "noexcept" ||
                         t[p].text == "override" || t[p].text == "final")) {
          --p;
        }
        if (t[p].text == ")") {
          const std::size_t open = match_paren_back(t, p);
          if (open < t.size() && open > 0) {
            const Token& callee = t[open - 1];
            const bool control = callee.text == "if" || callee.text == "for" ||
                                 callee.text == "while" || callee.text == "switch" ||
                                 callee.text == "catch";
            const bool lambda = callee.text == "]";
            if (!control && !lambda && function_depth == 0 &&
                callee.kind == Token::Kind::kIdentifier) {
              s.function = true;
              s.exempt = paren_is_ctor(t, p) || info.requires_methods.count(callee.text) > 0;
            }
          }
        }
      }
      if (s.function) {
        ++function_depth;
        if (s.exempt) ++exempt_depth;
      }
      scopes.push_back(s);
      continue;
    }
    if (text == "}") {
      if (!scopes.empty()) {
        if (scopes.back().function) {
          --function_depth;
          if (scopes.back().exempt) --exempt_depth;
        }
        scopes.pop_back();
        while (!lock_depths.empty() && lock_depths.back() > scopes.size()) {
          lock_depths.pop_back();
        }
      }
      continue;
    }
    if (lock_types().count(text) > 0 && i + 1 < t.size() &&
        t[i + 1].kind == Token::Kind::kIdentifier) {
      lock_depths.push_back(scopes.size());
      continue;
    }
    if (t[i].kind != Token::Kind::kIdentifier || info.guarded_fields.count(text) == 0) {
      continue;
    }
    // Only accesses inside a non-exempt function body count; the
    // declaration itself (`T field_ LACO_GUARDED_BY(mu_);`) and
    // member-initializer lists sit outside any body.
    if (function_depth == 0 || exempt_depth > 0) continue;
    if (i + 1 < t.size() && t[i + 1].text == "LACO_GUARDED_BY") continue;
    if (!lock_depths.empty()) continue;
    if (suppressed(tf, t[i].line, "guarded-access")) continue;
    add(out, relpath, t[i].line, "guarded-access",
        "field '" + text +
            "' is LACO_GUARDED_BY a mutex but is touched with no MutexLock in scope and "
            "outside any LACO_REQUIRES method — lock first, or annotate the method");
  }
}

// ------------------------------------------------------- serial-versioned

/// A struct/class whose body mentions serial::Writer or serial::Reader
/// — i.e. it participates in the v2 checkpoint container format.
struct SerialStructInfo {
  std::string name;
  int line = 1;
  bool has_version = false;  ///< body declares kVersion
};

std::vector<SerialStructInfo> find_serial_structs(const TokenizedFile& tf) {
  std::vector<SerialStructInfo> out;
  const std::vector<Token>& t = tf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "struct" && t[i].text != "class") continue;
    if (i > 0 && t[i - 1].text == "enum") continue;
    if (i + 1 >= t.size() || t[i + 1].kind != Token::Kind::kIdentifier) continue;
    // Find the body opener; hitting ';' first means a forward
    // declaration, '(' a declarator like `struct stat st(…)`.
    std::size_t open = i + 2;
    while (open < t.size() && t[open].text != "{" && t[open].text != ";" &&
           t[open].text != "(") {
      ++open;
    }
    if (open >= t.size() || t[open].text != "{") continue;
    int depth = 0;
    std::size_t end = t.size();
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == "{") ++depth;
      if (t[j].text == "}" && --depth == 0) {
        end = j;
        break;
      }
    }
    SerialStructInfo info;
    info.name = t[i + 1].text;
    info.line = t[i].line;
    bool uses_serial = false;
    for (std::size_t j = open; j < end; ++j) {
      if (t[j].text == "kVersion") info.has_version = true;
      if (t[j].text == "serial" && j + 2 < end && t[j + 1].text == "::" &&
          (t[j + 2].text == "Writer" || t[j + 2].text == "Reader")) {
        uses_serial = true;
      }
    }
    if (uses_serial) out.push_back(std::move(info));
  }
  return out;
}

/// Every struct serialized through laco::serial must declare an explicit
/// kVersion: unversioned payloads can only fail as checksum noise when
/// the layout changes, versioned ones fail with "unsupported format
/// version N" (docs/RELIABILITY.md "Checkpoint integrity").
void check_serial_versioned(const TokenizedFile& tf, const std::string& relpath,
                            std::vector<Diagnostic>& out) {
  if (!in_src(relpath)) return;
  for (const SerialStructInfo& s : find_serial_structs(tf)) {
    if (s.has_version) continue;
    if (suppressed(tf, s.line, "serial-versioned")) continue;
    add(out, relpath, s.line, "serial-versioned",
        "'" + s.name +
            "' is serialized through laco::serial but declares no kVersion — every "
            "serialized struct carries an explicit format version so old files fail "
            "cleanly (docs/RELIABILITY.md)");
  }
}

// ------------------------------------------------------ duplicate-include

void check_duplicate_includes(const TokenizedFile& tf, const std::string& relpath,
                              std::vector<Diagnostic>& out) {
  std::set<std::string> seen;
  for (const IncludeDirective& inc : tf.includes) {
    const std::string key = (inc.angled ? "<" : "\"") + inc.path;
    if (!seen.insert(key).second) {
      if (suppressed(tf, inc.line, "duplicate-include")) continue;
      add(out, relpath, inc.line, "duplicate-include",
          "\"" + inc.path + "\" is already included by this file — drop the duplicate");
    }
  }
}

// --------------------------------------------------------- include graph

struct TreeFile {
  std::string relpath;
  TokenizedFile tf;
  std::vector<std::pair<std::string, int>> project_includes;  ///< resolved relpath, line
};

/// Resolves a quoted include to a root-relative path: against src/
/// first (the include root), then against the including file's own
/// directory. Empty when the target is not part of the tree.
std::string resolve_include(const fs::path& root, const std::string& includer_rel,
                            const std::string& inc_path) {
  const fs::path as_src = root / "src" / inc_path;
  if (fs::exists(as_src)) return (fs::path("src") / inc_path).generic_string();
  const fs::path sibling = root / fs::path(includer_rel).parent_path() / inc_path;
  if (fs::exists(sibling)) {
    return (fs::path(includer_rel).parent_path() / inc_path).lexically_normal().generic_string();
  }
  return "";
}

void check_layer_dag(const std::vector<TreeFile>& files, std::vector<Diagnostic>& out) {
  for (const TreeFile& f : files) {
    const std::string from = layer_of(f.relpath);
    if (from.empty()) continue;
    for (const auto& [target, line] : f.project_includes) {
      const std::string to = layer_of(target);
      if (to.empty() || to == from) continue;
      if (layer_closure().count(from) == 0 || layer_closure().count(to) == 0) continue;
      if (layer_may_include(from, to)) continue;
      if (suppressed(f.tf, line, "layer-dag")) continue;
      add(out, f.relpath, line, "layer-dag",
          "include of \"" + target + "\" breaks the layer DAG: layer '" + from +
              "' must not depend on layer '" + to + "' (docs/STATIC_ANALYSIS.md)");
    }
  }
}

void check_include_cycles(const std::vector<TreeFile>& files, std::vector<Diagnostic>& out) {
  std::map<std::string, const TreeFile*> by_path;
  for (const TreeFile& f : files) by_path[f.relpath] = &f;
  enum class Mark { kWhite, kGrey, kBlack };
  std::map<std::string, Mark> marks;
  std::vector<std::string> path_stack;
  std::set<std::string> reported;  // canonical cycle keys

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    marks[node] = Mark::kGrey;
    path_stack.push_back(node);
    const auto it = by_path.find(node);
    if (it != by_path.end()) {
      for (const auto& [target, line] : it->second->project_includes) {
        (void)line;
        const auto mark = marks.find(target);
        if (mark != marks.end() && mark->second == Mark::kGrey) {
          // Cycle: extract the loop from the stack.
          const auto start = std::find(path_stack.begin(), path_stack.end(), target);
          std::vector<std::string> cycle(start, path_stack.end());
          std::vector<std::string> key = cycle;
          std::sort(key.begin(), key.end());
          std::string canon;
          for (const std::string& p : key) canon += p + "|";
          if (reported.insert(canon).second) {
            // Report on the lexicographically smallest member, with
            // the loop spelled out starting there.
            const std::string& anchor = key.front();
            const auto at = std::find(cycle.begin(), cycle.end(), anchor);
            std::rotate(cycle.begin(), at, cycle.end());
            std::string loop;
            for (const std::string& p : cycle) loop += p + " -> ";
            loop += cycle.front();
            int line_no = 1;
            const TreeFile* anchor_file = by_path.at(anchor);
            const std::string& next = cycle.size() > 1 ? cycle[1] : cycle[0];
            for (const auto& [t2, l2] : anchor_file->project_includes) {
              if (t2 == next) {
                line_no = l2;
                break;
              }
            }
            add(out, anchor, line_no, "include-cycle", "include cycle: " + loop);
          }
          continue;
        }
        if (mark == marks.end() || mark->second == Mark::kWhite) dfs(target);
      }
    }
    path_stack.pop_back();
    marks[node] = Mark::kBlack;
  };
  std::vector<std::string> order;
  for (const TreeFile& f : files) order.push_back(f.relpath);
  std::sort(order.begin(), order.end());
  for (const std::string& node : order) {
    if (marks[node] == Mark::kWhite || marks.count(node) == 0) dfs(node);
  }
}

/// Names a header plausibly provides: declared types, using-aliases,
/// macros, and anything that syntactically looks like a function name
/// (identifier followed by '('). Deliberately a superset — any shared
/// name counts as use, so the rule only fires when an include provides
/// *nothing* the includer mentions.
std::set<std::string> provided_names(const TokenizedFile& tf) {
  std::set<std::string> names;
  for (const std::string& d : tf.defines) names.insert(d);
  const std::vector<Token>& t = tf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& text = t[i].text;
    if ((text == "class" || text == "struct" || text == "union") && i + 1 < t.size() &&
        t[i + 1].kind == Token::Kind::kIdentifier) {
      names.insert(t[i + 1].text);
    }
    if (text == "enum" && i + 1 < t.size()) {
      std::size_t j = i + 1;
      if (t[j].text == "class" || t[j].text == "struct") ++j;
      if (j < t.size() && t[j].kind == Token::Kind::kIdentifier) names.insert(t[j].text);
    }
    if (text == "using" && i + 2 < t.size() && t[i + 1].kind == Token::Kind::kIdentifier &&
        t[i + 2].text == "=") {
      names.insert(t[i + 1].text);
    }
    if (t[i].kind == Token::Kind::kIdentifier && keywords().count(text) == 0 &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      if (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->")) names.insert(text);
    }
  }
  return names;
}

void check_iwyu(const fs::path& root, const std::vector<TreeFile>& files,
                std::vector<Diagnostic>& out) {
  std::map<std::string, const TreeFile*> by_path;
  for (const TreeFile& f : files) by_path[f.relpath] = &f;
  std::map<std::string, std::set<std::string>> provides_cache;
  const auto provides = [&](const std::string& header) -> const std::set<std::string>& {
    auto it = provides_cache.find(header);
    if (it != provides_cache.end()) return it->second;
    const auto fit = by_path.find(header);
    std::set<std::string> names;
    if (fit != by_path.end()) {
      names = provided_names(fit->second->tf);
    } else if (fs::exists(root / header)) {
      names = provided_names(tokenize(read_file(root / header)));
    }
    return provides_cache.emplace(header, std::move(names)).first->second;
  };

  for (const TreeFile& f : files) {
    if (!in_src(f.relpath)) continue;
    std::set<std::string> used;
    for (const Token& t : f.tf.tokens) {
      if (t.kind == Token::Kind::kIdentifier) used.insert(t.text);
    }
    const std::string own_stem = fs::path(f.relpath).stem().string();
    const std::string own_dir = fs::path(f.relpath).parent_path().generic_string();
    for (const auto& [target, line] : f.project_includes) {
      if (!is_header(target)) continue;
      // A .cpp always keeps its own header (it implements it), and the
      // nn ops TUs share nn/ops.hpp the same way.
      if (is_source(f.relpath) && fs::path(target).parent_path().generic_string() == own_dir &&
          fs::path(target).stem().string() == own_stem) {
        continue;
      }
      const std::set<std::string>& names = provides(target);
      bool referenced = false;
      for (const std::string& n : names) {
        if (used.count(n) > 0) {
          referenced = true;
          break;
        }
      }
      if (referenced) continue;
      if (suppressed(f.tf, line, "iwyu-unused-include")) continue;
      add(out, f.relpath, line, "iwyu-unused-include",
          "nothing declared by \"" + target +
              "\" is referenced in this file — drop the include (or include what you "
              "actually use)");
    }
  }
}

// ------------------------------------------------------- serial-roundtrip

/// Tree half of the serialization discipline: every serial-codec struct
/// in src/ must appear in tests/test_snapshot.cpp, the suite that
/// round-trips snapshot payloads bitwise and pins the corruption
/// wording. A codec nobody round-trips is a codec whose load path is
/// first exercised by a production crash.
void check_serial_roundtrip(const fs::path& root, const std::vector<TreeFile>& files,
                            std::vector<Diagnostic>& out) {
  const fs::path suite = root / "tests" / "test_snapshot.cpp";
  std::set<std::string> covered;
  if (fs::exists(suite)) {
    for (const Token& t : tokenize(read_file(suite)).tokens) {
      if (t.kind == Token::Kind::kIdentifier) covered.insert(t.text);
    }
  }
  for (const TreeFile& f : files) {
    for (const SerialStructInfo& s : find_serial_structs(f.tf)) {
      if (covered.count(s.name) > 0) continue;
      if (suppressed(f.tf, s.line, "serial-roundtrip")) continue;
      add(out, f.relpath, s.line, "serial-roundtrip",
          "'" + s.name +
              "' is serialized through laco::serial but never appears in "
              "tests/test_snapshot.cpp — cover it in the snapshot round-trip suite");
    }
  }
}

}  // namespace

std::string Diagnostic::str() const {
  return relpath + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::string strip_source(const std::string& source) { return strip_impl(source, nullptr); }

std::string strip_for_line_rules(const std::string& source) {
  const std::string stripped = strip_impl(source, nullptr);
  std::vector<std::string> lines = split_lines(stripped);
  std::vector<bool> directive, continuation;
  mark_directive_lines(lines, directive, continuation);
  std::string out;
  out.reserve(stripped.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (continuation[i]) {
      out.append(lines[i].size(), ' ');
    } else {
      out += lines[i];
    }
    if (i + 1 < lines.size()) out += '\n';
  }
  return out;
}

TokenizedFile tokenize(const std::string& source) {
  TokenizedFile tf;
  std::vector<CommentNote> comments;
  const std::string stripped = strip_impl(source, &comments);

  for (const CommentNote& note : comments) {
    if (note.text.find("LACO_DETERMINISTIC") != std::string::npos) {
      tf.deterministic_marks.push_back(note.line);
    }
    static const std::regex ok_re("analyze-ok\\(([a-z-]+)\\)");
    for (auto it = std::sregex_iterator(note.text.begin(), note.text.end(), ok_re);
         it != std::sregex_iterator(); ++it) {
      tf.suppressions[note.line].insert((*it)[1].str());
    }
  }

  const std::vector<std::string> stripped_lines = split_lines(stripped);
  const std::vector<std::string> raw_lines = split_lines(source);
  std::vector<bool> directive, continuation;
  mark_directive_lines(stripped_lines, directive, continuation);

  static const std::regex pragma_once_re("^\\s*#\\s*pragma\\s+once\\b");
  static const std::regex include_re("^\\s*#\\s*include");
  static const std::regex define_re("^\\s*#\\s*define\\s+([A-Za-z_][A-Za-z0-9_]*)");
  static const std::regex include_path_re("[<\"]([^\">]+)[\">]");
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    if (!directive[i] || continuation[i]) continue;
    const std::string& line = stripped_lines[i];
    if (std::regex_search(line, pragma_once_re)) tf.has_pragma_once = true;
    std::smatch m;
    if (std::regex_search(line, m, define_re)) tf.defines.push_back(m[1].str());
    if (std::regex_search(line, include_re) && i < raw_lines.size()) {
      // The path is a quoted token, which the strip blanked: recover
      // it from the raw line (include paths never span lines).
      std::smatch pm;
      if (std::regex_search(raw_lines[i], pm, include_path_re)) {
        IncludeDirective inc;
        inc.path = pm[1].str();
        inc.line = static_cast<int>(i) + 1;
        inc.angled = raw_lines[i][static_cast<std::size_t>(pm.position(0))] == '<';
        tf.includes.push_back(std::move(inc));
      }
    }
  }

  lex(stripped_lines, directive, tf.tokens);
  return tf;
}

std::string layer_of(const std::string& relpath) {
  if (!starts_with(relpath, "src/")) return "";
  const std::string rest = relpath.substr(4);
  const auto slash = rest.find('/');
  if (slash == std::string::npos) return "";
  const std::string dir = rest.substr(0, slash);
  if (dir == "placer") {
    const std::string stem = fs::path(rest).stem().string();
    if (stem == "inflation" || stem == "net_weighting") return "flows";
  }
  return dir;
}

bool layer_may_include(const std::string& from, const std::string& to) {
  const auto it = layer_closure().find(from);
  if (it == layer_closure().end()) return true;  // unknown layer: out of scope
  return it->second.count(to) > 0;
}

std::vector<Diagnostic> analyze_file(const fs::path& file, const std::string& relpath,
                                     const fs::path& root) {
  const TokenizedFile tf = tokenize(read_file(file));
  std::vector<Diagnostic> out;

  GuardInfo guards;
  harvest_guards(tf, guards);
  if (!root.empty() && is_source(relpath)) {
    // Pull guarded fields and LACO_REQUIRES methods from the paired
    // header: the annotations live on the declarations.
    const fs::path header = root / fs::path(relpath).replace_extension(".hpp");
    if (fs::exists(header)) harvest_guards(tokenize(read_file(header)), guards);
  }

  check_tensor_by_value(tf, relpath, out);
  check_deterministic_regions(tf, relpath, out);
  check_guarded_access(tf, guards, relpath, out);
  check_duplicate_includes(tf, relpath, out);
  check_serial_versioned(tf, relpath, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return out;
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "tests", "tools", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && ends_with(it->path().filename().string(), "_fixtures")) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string rel = fs::relative(it->path(), root).generic_string();
      if (is_header(rel) || is_source(rel)) files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Diagnostic> analyze_tree(const fs::path& root, const Options& options) {
  const std::vector<std::string> relpaths = collect_files(root);
  std::vector<Diagnostic> out;

  if (options.file_rules) {
    for (const std::string& rel : relpaths) {
      std::vector<Diagnostic> file_diags = analyze_file(root / rel, rel, root);
      out.insert(out.end(), file_diags.begin(), file_diags.end());
    }
  }

  if (options.tree_rules) {
    std::vector<TreeFile> files;
    for (const std::string& rel : relpaths) {
      if (!in_src(rel)) continue;
      TreeFile f;
      f.relpath = rel;
      f.tf = tokenize(read_file(root / rel));
      for (const IncludeDirective& inc : f.tf.includes) {
        if (inc.angled) continue;
        const std::string target = resolve_include(root, rel, inc.path);
        if (!target.empty()) f.project_includes.emplace_back(target, inc.line);
      }
      files.push_back(std::move(f));
    }
    check_layer_dag(files, out);
    check_include_cycles(files, out);
    check_iwyu(root, files, out);
    check_serial_roundtrip(root, files, out);
  }

  std::stable_sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.relpath != b.relpath) return a.relpath < b.relpath;
    return a.line < b.line;
  });
  return out;
}

}  // namespace laco::analyze
