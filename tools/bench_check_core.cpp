#include "bench_check_core.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"

namespace laco::benchcheck {

namespace {

using laco::obs::BenchReporter;
using laco::obs::Json;

int usage(std::ostream& err) {
  err << "usage: laco-bench-check <current.json> <baseline.json> "
         "[--max-drift PCT] [--strict] [--metric KEY]...\n";
  return 2;
}

Json load_report(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read " + path;
    return Json();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    Json report = Json::parse(buffer.str());
    const std::string problem = BenchReporter::validate(report);
    if (!problem.empty()) error = path + ": " + problem;
    return report;
  } catch (const std::exception& e) {
    error = path + ": " + e.what();
    return Json();
  }
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::string current_path, baseline_path;
  double max_drift = 25.0;
  bool strict = false;
  std::set<std::string> only_metrics;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--strict") {
      strict = true;
    } else if (args[i] == "--max-drift" && i + 1 < args.size()) {
      try {
        max_drift = std::stod(args[++i]);
      } catch (const std::exception&) {
        return usage(err);
      }
    } else if (args[i] == "--metric" && i + 1 < args.size()) {
      only_metrics.insert(args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage(err);
    } else if (current_path.empty()) {
      current_path = args[i];
    } else if (baseline_path.empty()) {
      baseline_path = args[i];
    } else {
      return usage(err);
    }
  }
  if (current_path.empty() || baseline_path.empty()) return usage(err);

  std::string error;
  const Json current = load_report(current_path, error);
  if (!error.empty()) {
    err << "laco-bench-check: " << error << '\n';
    return 2;
  }
  const Json baseline = load_report(baseline_path, error);
  if (!error.empty()) {
    err << "laco-bench-check: " << error << '\n';
    return 2;
  }

  out << "bench drift: " << current.at("name").as_string() << " (current " << current_path
      << " vs baseline " << baseline_path << ", threshold " << max_drift << "%)\n";
  int compared = 0;
  int flagged = 0;
  std::set<std::string> seen;
  for (const auto& [key, base_value] : baseline.at("metrics").as_object()) {
    if (!base_value.is_number()) continue;
    if (!only_metrics.empty() && only_metrics.count(key) == 0) continue;
    seen.insert(key);
    if (!current.at("metrics").contains(key)) {
      out << "  " << key << ": MISSING from current report\n";
      ++flagged;
      continue;
    }
    const double base = base_value.as_double();
    const double cur = current.at("metrics").at(key).as_double();
    const double drift = 100.0 * (cur - base) / std::max(std::abs(base), 1e-12);
    const bool over = std::abs(drift) > max_drift;
    ++compared;
    flagged += over ? 1 : 0;
    out << "  " << key << ": " << base << " -> " << cur << "  (" << std::showpos
        << std::setprecision(3) << drift << std::noshowpos << std::setprecision(6) << "%)"
        << (over ? "  ** DRIFT **" : "") << '\n';
  }
  // A --metric gate that matches nothing would otherwise pass without
  // comparing anything; flag the absent keys instead.
  for (const std::string& key : only_metrics) {
    if (seen.count(key) == 0) {
      out << "  " << key << ": MISSING from baseline report\n";
      ++flagged;
    }
  }
  out << compared << " metric(s) compared, " << flagged << " beyond threshold"
      << (strict ? "" : " (warn-only; pass --strict to gate)") << '\n';
  return strict && flagged > 0 ? 1 : 0;
}

}  // namespace laco::benchcheck
