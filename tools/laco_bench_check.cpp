// laco-bench-check — drift report between two laco-bench JSON reports
// (docs/OBSERVABILITY.md schema). Thin CLI shell; the comparison and
// the argv/exit-code contract live in tools/bench_check_core.hpp and
// are covered by tests/test_bench_check.cpp.
//
//   laco-bench-check <current.json> <baseline.json>
//                    [--max-drift PCT] [--strict] [--metric KEY]...
//
// Exit status: 2 on unreadable/invalid reports; with --strict, 1 when
// any metric drifts past the threshold; otherwise 0 (warn-only, the
// run_benches.sh --check-baseline default — machine perf varies, so
// drift gates are opt-in).
#include <iostream>
#include <string>
#include <vector>

#include "bench_check_core.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return laco::benchcheck::run(args, std::cout, std::cerr);
}
