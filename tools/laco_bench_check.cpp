// laco-bench-check — drift report between two laco-bench JSON reports
// (docs/OBSERVABILITY.md schema). Compares every numeric headline
// metric of `current` against `baseline` and prints the relative
// drift; metrics beyond --max-drift are flagged.
//
//   laco-bench-check <current.json> <baseline.json>
//                    [--max-drift PCT] [--strict]
//
// Exit status: 2 on unreadable/invalid reports; with --strict, 1 when
// any metric drifts past the threshold; otherwise 0 (warn-only, the
// run_benches.sh --check-baseline default — machine perf varies, so
// drift gates are opt-in).
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"

namespace {

using laco::obs::BenchReporter;
using laco::obs::Json;

int usage() {
  std::cerr << "usage: laco-bench-check <current.json> <baseline.json> "
               "[--max-drift PCT] [--strict]\n";
  return 2;
}

Json load_report(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read " + path;
    return Json();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    Json report = Json::parse(buffer.str());
    const std::string problem = BenchReporter::validate(report);
    if (!problem.empty()) error = path + ": " + problem;
    return report;
  } catch (const std::exception& e) {
    error = path + ": " + e.what();
    return Json();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path;
  double max_drift = 25.0;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--max-drift") == 0 && i + 1 < argc) {
      max_drift = std::stod(argv[++i]);
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else {
      return usage();
    }
  }
  if (current_path.empty() || baseline_path.empty()) return usage();

  std::string error;
  const Json current = load_report(current_path, error);
  if (!error.empty()) {
    std::cerr << "laco-bench-check: " << error << '\n';
    return 2;
  }
  const Json baseline = load_report(baseline_path, error);
  if (!error.empty()) {
    std::cerr << "laco-bench-check: " << error << '\n';
    return 2;
  }

  std::cout << "bench drift: " << current.at("name").as_string() << " (current "
            << current_path << " vs baseline " << baseline_path << ", threshold "
            << max_drift << "%)\n";
  int compared = 0;
  int flagged = 0;
  for (const auto& [key, base_value] : baseline.at("metrics").as_object()) {
    if (!base_value.is_number()) continue;
    if (!current.at("metrics").contains(key)) {
      std::cout << "  " << key << ": MISSING from current report\n";
      ++flagged;
      continue;
    }
    const double base = base_value.as_double();
    const double cur = current.at("metrics").at(key).as_double();
    const double drift =
        100.0 * (cur - base) / std::max(std::abs(base), 1e-12);
    const bool over = std::abs(drift) > max_drift;
    ++compared;
    flagged += over ? 1 : 0;
    std::cout << "  " << key << ": " << base << " -> " << cur << "  ("
              << std::showpos << std::setprecision(3) << drift << std::noshowpos
              << std::setprecision(6) << "%)" << (over ? "  ** DRIFT **" : "") << '\n';
  }
  std::cout << compared << " metric(s) compared, " << flagged << " beyond threshold"
            << (strict ? "" : " (warn-only; pass --strict to gate)") << '\n';
  return strict && flagged > 0 ? 1 : 0;
}
